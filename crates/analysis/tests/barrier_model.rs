//! Exhaustive schedule exploration of the `WorkerPool` generation
//! barrier, run as a normal `cargo test`.
//!
//! The model (see `mbus_analysis::barrier`) mirrors the protocol in
//! `crates/core/src/fleet/pool.rs`: job-slot publication, the
//! `submitted`/`completed` counters, the `work`/`done` condvar pair
//! with no spurious-wakeup crutch, panic catch-and-ferry, and the
//! wait-on-drop epoch guard. Every test here visits **every**
//! reachable interleaving of its configuration, so a pass is a proof
//! over the model, not a sampled smoke test.

use mbus_analysis::barrier::{BarrierModel, ViolationKind, MAX_EPOCHS, MAX_WORKERS};

/// The headline proof: all worker × epoch sizes up to the bound, no
/// deadlock, no lost wakeup, no generation skew, every job runs
/// exactly once.
#[test]
fn pool_barrier_exhaustive_up_to_3x3() {
    let mut grand_total = 0u64;
    for workers in 1..=MAX_WORKERS {
        for epochs in 1..=MAX_EPOCHS {
            let model = BarrierModel::pool(workers, epochs);
            let proof = model.explore().unwrap_or_else(|v| {
                panic!("{workers}w x {epochs}e violated the barrier protocol:\n{v}")
            });
            assert!(proof.states > 0 && proof.transitions >= proof.states - 1);
            grand_total += proof.states;
        }
        // More workers must widen the interleaving space.
        assert!(
            BarrierModel::pool(workers, MAX_EPOCHS)
                .explore()
                .unwrap()
                .states
                >= BarrierModel::pool(workers, 1).explore().unwrap().states
        );
    }
    assert!(
        grand_total > 1_000,
        "suspiciously small space: {grand_total}"
    );
}

/// A worker panicking mid-epoch must not wedge the barrier: the pool
/// catches the payload, the generation still completes, and the driver
/// observes the panic after `wait_all`. Checked at every (epoch,
/// worker) coordinate of the largest configuration.
#[test]
fn worker_panic_mid_epoch_is_ferried_not_lost() {
    for epoch in 0..MAX_EPOCHS {
        for worker in 0..MAX_WORKERS {
            let mut model = BarrierModel::pool(MAX_WORKERS, MAX_EPOCHS);
            model.panic_at = Some((epoch, worker));
            model.explore().unwrap_or_else(|v| {
                panic!("panic at epoch {epoch} worker {worker} broke the barrier:\n{v}")
            });
        }
    }
}

/// The driver unwinding mid-epoch (a sink panic in
/// `ShardedFleet::drive_sink`) exercises the wait-on-drop guard: the
/// guard must still drain the in-flight generation before the pool
/// shuts down, on every schedule.
#[test]
fn driver_unwind_mid_epoch_drains_via_guard() {
    for epoch in 0..MAX_EPOCHS {
        for workers in 1..=MAX_WORKERS {
            let mut model = BarrierModel::pool(workers, MAX_EPOCHS);
            model.driver_unwinds_at = Some(epoch);
            model.explore().unwrap_or_else(|v| {
                panic!("driver unwind at epoch {epoch}, {workers}w: guard failed:\n{v}")
            });
        }
    }
}

/// Driver unwind and worker panic in the same epoch: the double-fault
/// path. The guard drains, the payload is simply dropped with the
/// pool — but nothing deadlocks.
#[test]
fn driver_unwind_with_simultaneous_worker_panic() {
    let mut model = BarrierModel::pool(2, 2);
    model.driver_unwinds_at = Some(1);
    model.panic_at = Some((1, 0));
    model
        .explore()
        .unwrap_or_else(|v| panic!("double fault wedged the pool:\n{v}"));
}

/// Short generations (fewer jobs than workers) leave the extra workers
/// parked across the barrier — the pool's grows-but-never-shrinks
/// shape. No skew, no stranded worker.
#[test]
fn short_generations_leave_extras_parked() {
    for jobs in 1..MAX_WORKERS {
        let mut model = BarrierModel::pool(MAX_WORKERS, MAX_EPOCHS);
        model.jobs = Some(jobs);
        model.explore().unwrap_or_else(|v| {
            panic!("{jobs} job(s) over {MAX_WORKERS} workers broke the barrier:\n{v}")
        });
    }
}

/// The checker's self-test: seed the classic lost-wakeup bug
/// (`notify_one` after publishing to several parked workers) and
/// demand the explorer convicts it with a concrete schedule.
#[test]
fn explorer_convicts_injected_lost_wakeup() {
    let mut model = BarrierModel::pool(3, 1);
    model.lost_wakeup_bug = true;
    let v = model.explore().expect_err("injected bug must be found");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(
        v.trace.iter().any(|step| step.contains("notify_one")),
        "counterexample should show the narrow wakeup:\n{}",
        v.trace.join("\n")
    );
    // With one worker parked at a time, notify_one is actually enough:
    // the bug only bites with real fan-out.
    let mut narrow = BarrierModel::pool(1, MAX_EPOCHS);
    narrow.lost_wakeup_bug = true;
    narrow
        .explore()
        .expect("single-worker pool tolerates notify_one");
}
