//! Fixture-driven end-to-end tests for the five lint rules.
//!
//! Each rule has one known-good and one known-bad fixture under
//! `tests/fixtures/`. The bad fixtures assert the *exact* (file, line,
//! rule id) of every finding — a lint that fires on the right file but
//! the wrong line is a lint nobody can act on. Fixtures are linted
//! under synthetic workspace-relative paths so the per-file allowlists
//! (hot paths, audited thread layers, bench exemption) engage exactly
//! as they would in the real tree.

use mbus_analysis::lexer::verify_round_trip;
use mbus_analysis::rules::{check_file, Finding};
use mbus_analysis::walk::{lint_workspace, workspace_root_from};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints the named fixture as if it lived at `as_path` in the
/// workspace, and returns `(line, rule-id)` pairs.
fn lint_as(name: &str, as_path: &str) -> Vec<(u32, &'static str)> {
    let findings = check_file(as_path, &fixture(name));
    for f in &findings {
        assert_eq!(f.file, as_path, "findings must carry the linted path");
    }
    findings.iter().map(|f| (f.line, f.rule.id())).collect()
}

#[test]
fn unsafe_rule_good_and_bad() {
    assert_eq!(
        lint_as("unsafe_good.rs", "crates/core/src/fleet/pool.rs"),
        []
    );
    assert_eq!(
        lint_as("unsafe_bad.rs", "crates/core/src/fleet/pool.rs"),
        [
            (4, "unsafe-safety-comment"),  // unjustified unsafe block
            (7, "unsafe-safety-comment"),  // unsafe fn without # Safety
            (13, "unsafe-safety-comment"), // unsafe impl Send
        ]
    );
}

#[test]
fn thread_rule_good_and_bad() {
    assert_eq!(
        lint_as("thread_good.rs", "crates/core/src/fleet/shard.rs"),
        []
    );
    assert_eq!(
        lint_as("thread_bad.rs", "crates/core/src/fleet/shard.rs"),
        [
            (6, "thread-outside-audited"),  // std::thread::scope
            (11, "thread-outside-audited"), // thread::spawn
        ]
    );
    // The same source is legal inside the audited pool layer.
    assert_eq!(
        lint_as("thread_bad.rs", "crates/core/src/fleet/pool.rs"),
        []
    );
}

#[test]
fn clock_rule_good_and_bad() {
    assert_eq!(
        lint_as("clock_good.rs", "crates/core/src/fleet/shard.rs"),
        []
    );
    assert_eq!(
        lint_as("clock_bad.rs", "crates/core/src/fleet/shard.rs"),
        [
            (3, "nondeterministic-clock"), // SystemTime import
            (6, "nondeterministic-clock"), // Instant::now
            (7, "nondeterministic-clock"), // SystemTime::now
        ]
    );
    // The bench harness is exempt wholesale.
    assert_eq!(lint_as("clock_bad.rs", "crates/bench/src/harness.rs"), []);
}

#[test]
fn send_audit_rule_good_and_bad() {
    assert_eq!(
        lint_as("send_good.rs", "crates/core/src/fleet/shard.rs"),
        []
    );
    assert_eq!(
        lint_as("send_bad.rs", "crates/core/src/fleet/shard.rs"),
        [
            (3, "rc-send-audit"), // use …::RefCell
            (4, "rc-send-audit"), // use …::Rc
            (7, "rc-send-audit"), // Rc in the field type
            (7, "rc-send-audit"), // RefCell in the field type
        ]
    );
}

#[test]
fn hot_path_rule_good_and_bad() {
    assert_eq!(
        lint_as("hot_path_good.rs", "crates/core/src/analytic.rs"),
        []
    );
    assert_eq!(
        lint_as("hot_path_bad.rs", "crates/core/src/analytic.rs"),
        [(4, "hot-path-unwrap"), (8, "hot-path-unwrap")]
    );
    // Outside the named hot paths the same source is fine.
    assert_eq!(
        lint_as("hot_path_bad.rs", "crates/core/src/scenario.rs"),
        []
    );
}

#[test]
fn lexer_round_trips_every_fixture() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        verify_round_trip(&src)
            .unwrap_or_else(|e| panic!("round trip failed for {}: {e}", path.display()));
        checked += 1;
    }
    assert!(checked >= 11, "expected all fixtures, saw {checked}");
}

#[test]
fn lexer_torture_file_yields_no_findings_anywhere() {
    // Every forbidden keyword in the torture file sits inside a string,
    // comment, or identifier — no rule may fire even under the
    // strictest path (an engine hot-path file).
    assert_eq!(
        lint_as("lexer_torture.rs", "crates/core/src/analytic.rs"),
        []
    );
}

/// The whole repository lints clean. This is the acceptance criterion
/// "the lint binary exits 0 on the repo", pinned as a tier-1 test so a
/// violation fails `cargo test` locally, not just the CI lint job.
#[test]
fn workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = workspace_root_from(here).expect("workspace root above crates/analysis");
    let (scanned, findings) = lint_workspace(&root).unwrap_or_else(|(p, e)| {
        panic!("unreadable source file {}: {e}", p.display());
    });
    assert!(scanned > 20, "workspace walk found only {scanned} files");
    let rendered: Vec<String> = findings.iter().map(Finding::to_string).collect();
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}
