// Fixture: three unsafe sites, none justified.

pub fn first(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}

pub unsafe fn second(xs: &[u32]) -> u32 {
    *xs.as_ptr().add(1)
}

pub struct Handle(*mut u8);

unsafe impl Send for Handle {}
