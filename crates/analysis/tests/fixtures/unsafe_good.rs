// Fixture: every unsafe site carries a SAFETY justification.

/// Reads the first element without a bounds check.
///
/// # Safety
///
/// `xs` must be non-empty.
pub unsafe fn first_unchecked(xs: &[u32]) -> u32 {
    // SAFETY: the caller guarantees `xs` is non-empty, so index 0 is
    // in bounds.
    unsafe { *xs.get_unchecked(0) }
}

pub struct Handle(*mut u8);

// SAFETY: the raw pointer is only dereferenced on the owning thread;
// `Handle` is a token, not an access path.
unsafe impl Send for Handle {}
