// SEND-AUDIT: the Rc graph below is owned wholesale by one shard; it
// crosses threads only by moving the entire `ShardState`, never by
// sharing, so no Rc/RefCell is ever reachable from two threads.

use std::cell::RefCell;
use std::rc::Rc;

pub struct ShardState {
    nodes: Vec<Rc<RefCell<Node>>>,
}

// SAFETY: see the SEND-AUDIT above — moved wholesale, never shared.
unsafe impl Send for ShardState {}
