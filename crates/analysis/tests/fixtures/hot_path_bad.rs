// Fixture: unwrap/expect on the hot path, outside any test module.

pub fn arbitration_winner(&mut self) -> NodeId {
    self.contenders.next().expect("nonempty contender field")
}

pub fn pop_message(&mut self) -> Message {
    self.tx_queue.pop_front().unwrap()
}
