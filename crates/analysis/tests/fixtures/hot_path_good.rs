// Fixture: hot-path code handles its None arms explicitly; tests may
// still unwrap.

pub fn arbitration_winner(&mut self) -> NodeId {
    let Some(winner) = self.contenders.next() else {
        unreachable!("arbitration entered with a nonempty contender set");
    };
    winner
}

#[cfg(test)]
mod tests {
    #[test]
    fn winner_is_lowest_id() {
        let w = field(&[3, 1, 2]).next().unwrap();
        assert_eq!(w, 1);
    }
}
