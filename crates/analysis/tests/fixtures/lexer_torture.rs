// Fixture: token shapes that defeat naive regex scanning. The lexer
// must round-trip this file exactly and classify every construct so
// that none of the keywords below ever reach the rules as code.

/* nested /* block /* comments */ to depth three */ are legal */

pub fn not_actually_unsafe() {
    let s = "unsafe { thread::spawn }"; // keyword inside a string
    let r = r#"Instant::now() and "quoted" SystemTime"#;
    let deep = r##"a raw string holding r#"another"# inside"##;
    let b = b"bytes with unsafe";
    let br = br#"raw bytes: .unwrap()"#;
    let c = '\'';
    let newline = '\n';
    let not_a_char = 'static; // lifetime, not a char literal
    let label = 'outer: loop {
        break 'outer;
    };
    let r#match = 0u32; // raw identifier
    let range = 0..r#match; // `0..` must not lex as a float
    let float = 1.5e-3_f64;
    let hex = 0xFFusize;
    let _ = (s, r, deep, b, br, c, newline, not_a_char, label, range, float, hex);
}
