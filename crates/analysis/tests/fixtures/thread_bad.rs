// Fixture: raw threading primitives outside the audited layers.

use std::thread;

pub fn fan_out(jobs: Vec<Job>) -> Vec<Outcome> {
    std::thread::scope(|s| {
        for job in jobs {
            s.spawn(move || job.run());
        }
    });
    thread::spawn(|| cleanup()).join().unwrap()
}
