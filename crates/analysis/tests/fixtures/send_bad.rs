// Fixture: single-threaded types next to an `impl Send`, unaudited.

use std::cell::RefCell;
use std::rc::Rc;

pub struct ShardState {
    nodes: Vec<Rc<RefCell<Node>>>,
}

// SAFETY: moved wholesale, never shared.
unsafe impl Send for ShardState {}
