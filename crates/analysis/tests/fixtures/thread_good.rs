// Fixture: fans work out through the audited pool layer instead of
// spawning raw threads.

pub fn fan_out(jobs: Vec<Job>) -> Vec<Outcome> {
    let mut pool = WorkerPool::new(jobs.len().min(8));
    pool.run_scoped(jobs)
}
