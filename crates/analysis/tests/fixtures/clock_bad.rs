// Fixture: unmarked wall-clock reads in a non-bench crate.

use std::time::{Instant, SystemTime};

pub fn seed_from_clock() -> u64 {
    let t = Instant::now();
    let s = SystemTime::now();
    mix(t, s)
}
