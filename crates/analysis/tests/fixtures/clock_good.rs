// Fixture: a wall-time gauge with the required justification marker.

pub fn gauge_epoch(&mut self) -> Duration {
    // WALL-CLOCK: load gauge for the fairness report only; the reading
    // feeds a human-facing duration, never a signature-bearing stream.
    let start = Instant::now();
    self.run_epoch();
    start.elapsed()
}
