//! # mbus-power — energy, power, and area models
//!
//! The quantitative substrate for the MBus reproduction's evaluation
//! (§6.2 of the paper):
//!
//! * [`units`] — `Energy` / `Power` / `Capacitance` newtypes.
//! * [`cmos`] — ½CV² switching-energy accounting over wire-level
//!   traces, with the paper's pad/wire capacitance parameters.
//! * [`i2c_model`] — the §2.1 open-collector derivation (15.5 kΩ,
//!   23/116/35 pJ, 69.6 µW) plus "Oracle I2C" and standard fast-mode
//!   configurations for Fig. 11.
//! * [`lee_model`] — Lee et al.'s 88 pJ/bit I2C variant (§2.2).
//! * [`mbus_model`] — simulated (3.5 pJ/bit/chip) and measured
//!   (27.45/22.71/17.55 pJ/bit, Table 3) MBus energies and the §6.2
//!   per-message formula.
//! * [`battery`] — µAh → lifetime arithmetic for §6.3.
//! * [`area`] — Table 2's synthesis inventory and a fitted area model.
//!
//! ## Example: the paper's headline energy comparison
//!
//! ```
//! use mbus_power::i2c_model::OracleI2c;
//! use mbus_power::lee_model::LeeI2c;
//! use mbus_power::mbus_model::measured_average_pj_per_bit;
//! use mbus_power::units::Capacitance;
//!
//! let i2c = OracleI2c::new(1.2, Capacitance::from_pf(50.0));
//! let lee = LeeI2c::default();
//! let mbus = measured_average_pj_per_bit();
//!
//! // The §2 energy ladder: MBus < Lee I2C < pull-up I2C.
//! assert!(mbus < lee.bit_energy().as_pj());
//! assert!(lee.bit_energy() < i2c.bit_energy());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod battery;
pub mod cmos;
pub mod i2c_model;
pub mod lee_model;
pub mod mbus_model;
pub mod units;

pub use battery::Battery;
pub use cmos::SegmentModel;
pub use units::{Capacitance, Energy, Power};
