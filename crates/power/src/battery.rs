//! Battery capacity and lifetime arithmetic for the §6.3 systems.

use mbus_sim::SimTime;

use crate::units::{Energy, Power};

/// A thin-film micro-battery, characterized by charge capacity and
/// terminal voltage.
///
/// # Example
///
/// ```
/// use mbus_power::battery::Battery;
///
/// // §6.3.1's "crude battery capacity approximation of
/// // 2 µAh × 3.8 V = 27.4 mJ".
/// let b = Battery::new(2.0, 3.8);
/// assert!((b.energy().as_mj() - 27.4).abs() < 0.1);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Battery {
    capacity_uah: f64,
    voltage: f64,
}

impl Battery {
    /// Creates a battery from capacity (µAh) and voltage.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity or voltage.
    pub fn new(capacity_uah: f64, voltage: f64) -> Self {
        assert!(capacity_uah > 0.0, "capacity must be positive");
        assert!(voltage > 0.0, "voltage must be positive");
        Battery {
            capacity_uah,
            voltage,
        }
    }

    /// The temperature system's 2 µAh / 3.8 V cell (Fig. 12).
    pub fn temperature_system() -> Self {
        Battery::new(2.0, 3.8)
    }

    /// The imaging system's 5 µAh / 3.8 V cell (Fig. 13).
    pub fn imaging_system() -> Self {
        Battery::new(5.0, 3.8)
    }

    /// Charge capacity in µAh.
    pub fn capacity_uah(&self) -> f64 {
        self.capacity_uah
    }

    /// Total stored energy: `µAh × 3600 × V`.
    pub fn energy(&self) -> Energy {
        Energy::from_j(self.capacity_uah * 1e-6 * 3600.0 * self.voltage)
    }

    /// Lifetime at a constant average power draw.
    pub fn lifetime(&self, draw: Power) -> SimTime {
        self.energy() / draw
    }

    /// Lifetime in fractional days — the unit §6.3.1 reports.
    pub fn lifetime_days(&self, draw: Power) -> f64 {
        self.lifetime(draw).as_secs_f64() / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_battery_is_27_4_mj() {
        let e = Battery::temperature_system().energy();
        assert!((e.as_mj() - 27.36).abs() < 0.01);
    }

    #[test]
    fn lifetime_matches_sense_and_send_numbers() {
        // §6.3.1: ~44.5 days before the MBus saving, ~47.5 after —
        // implying average draws of ≈7.12 nW and ≈6.67 nW.
        let b = Battery::temperature_system();
        let before = b.lifetime_days(Power::from_nw(7.12));
        let after = b.lifetime_days(Power::from_nw(6.67));
        assert!((before - 44.5).abs() < 0.3, "{before}");
        assert!((after - 47.5).abs() < 0.3, "{after}");
        // The 71-hour (~3 day) extension.
        assert!(((after - before) - 3.0).abs() < 0.3);
    }

    #[test]
    fn lifetime_scales_inversely_with_draw() {
        let b = Battery::imaging_system();
        let d1 = b.lifetime_days(Power::from_nw(10.0));
        let d2 = b.lifetime_days(Power::from_nw(20.0));
        assert!((d1 / d2 - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0, 3.8);
    }
}
