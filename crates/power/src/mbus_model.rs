//! MBus energy models: the paper's simulated (PrimeTime) and measured
//! (Table 3) numbers, the per-message energy formula of §6.2, and the
//! Fig. 11 power/goodput series.

use mbus_core::timing;
use mbus_core::Message;
use mbus_sim::SimTime;

use crate::units::{Energy, Power};

/// Post-APR PrimeTime result (§6.2): 3.5 pJ/bit/chip while transmitting.
pub const SIMULATED_PJ_PER_BIT_PER_CHIP: f64 = 3.5;
/// PrimeTime idle estimate: 5.6 pW per chip.
pub const SIMULATED_IDLE_PW_PER_CHIP: f64 = 5.6;

/// Table 3: measured energy per bit, member + mediator node sending.
pub const MEASURED_TX_PJ_PER_BIT: f64 = 27.45;
/// Table 3: measured energy per bit, member node receiving.
pub const MEASURED_RX_PJ_PER_BIT: f64 = 22.71;
/// Table 3: measured energy per bit, member node forwarding.
pub const MEASURED_FWD_PJ_PER_BIT: f64 = 17.55;

/// Table 3's headline average: (27.45 + 22.71 + 17.55)/3 ≈ 22.6
/// pJ/bit/chip.
pub fn measured_average_pj_per_bit() -> f64 {
    (MEASURED_TX_PJ_PER_BIT + MEASURED_RX_PJ_PER_BIT + MEASURED_FWD_PJ_PER_BIT) / 3.0
}

/// Which calibration an estimate uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Calibration {
    /// The 3.5 pJ/bit/chip PrimeTime number ("MBus Simulated").
    Simulated,
    /// The Table 3 role energies ("MBus Measured"); the paper
    /// attributes the ≈6.5× gap to chip-internal overheads that could
    /// not be isolated from the bus.
    Measured,
}

/// The §6.2 per-message energy formula:
///
/// `E = e_bit · ({19 or 43} + 8·n_bytes) · n_chips`
///
/// For [`Calibration::Measured`] the per-chip term uses the role split:
/// one transmitter, one receiver, `n_chips − 2` forwarders.
///
/// # Example
///
/// ```
/// use mbus_core::{Address, FuId, Message, ShortPrefix};
/// use mbus_power::mbus_model::{message_energy, Calibration};
///
/// // §6.3.1: an 8-byte message on the 3-chip system costs ≈5.6 nJ.
/// let dest = Address::short(ShortPrefix::new(0x3)?, FuId::ZERO);
/// let msg = Message::new(dest, vec![0; 8]);
/// let e = message_energy(&msg, 3, Calibration::Measured);
/// assert!((e.as_nj() - 5.62).abs() < 0.05);
/// # Ok::<(), mbus_core::MbusError>(())
/// ```
pub fn message_energy(msg: &Message, n_chips: usize, calibration: Calibration) -> Energy {
    let bits = timing::transaction_cycles(msg) as f64;
    Energy::from_pj(bits * per_bit_system_pj(n_chips, calibration))
}

/// System-wide pJ per bus-clock bit for an `n_chips` ring.
pub fn per_bit_system_pj(n_chips: usize, calibration: Calibration) -> f64 {
    assert!(n_chips >= 2, "a bus has a mediator node and a member");
    match calibration {
        Calibration::Simulated => SIMULATED_PJ_PER_BIT_PER_CHIP * n_chips as f64,
        Calibration::Measured => {
            MEASURED_TX_PJ_PER_BIT
                + MEASURED_RX_PJ_PER_BIT
                + MEASURED_FWD_PJ_PER_BIT * (n_chips - 2) as f64
        }
    }
}

/// Fig. 11a: total bus power while continuously clocking bits at
/// `clock_hz`.
pub fn total_power(n_chips: usize, clock_hz: f64, calibration: Calibration) -> Power {
    Power::from_w(per_bit_system_pj(n_chips, calibration) * 1e-12 * clock_hz)
}

/// Fig. 11b: energy per *goodput* bit for back-to-back short-addressed
/// `payload_bytes` messages.
pub fn energy_per_goodput_bit(
    payload_bytes: usize,
    n_chips: usize,
    calibration: Calibration,
) -> Energy {
    if payload_bytes == 0 {
        return Energy::ZERO;
    }
    let total_bits = (timing::SHORT_OVERHEAD_CYCLES as usize + 8 * payload_bytes) as f64;
    let goodput_bits = 8.0 * payload_bytes as f64;
    Energy::from_pj(per_bit_system_pj(n_chips, calibration) * total_bits / goodput_bits)
}

/// PrimeTime idle power for an `n_chips` system — three orders of
/// magnitude below the measured 8 nW system idle, which is why §6.2
/// concludes MBus "contributes negligible power to the idle state".
pub fn idle_power(n_chips: usize) -> Power {
    Power::from_pw(SIMULATED_IDLE_PW_PER_CHIP * n_chips as f64)
}

/// Average power of a duty-cycled workload: `n_messages` like `msg`
/// every `period`, plus a constant standby floor.
pub fn duty_cycled_power(
    msg: &Message,
    n_messages: f64,
    period: SimTime,
    n_chips: usize,
    standby: Power,
    calibration: Calibration,
) -> Power {
    let active = message_energy(msg, n_chips, calibration) * n_messages;
    standby + active / period
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbus_core::{Address, FuId, ShortPrefix};

    fn msg(n: usize) -> Message {
        Message::new(
            Address::short(ShortPrefix::new(0x2).unwrap(), FuId::ZERO),
            vec![0; n],
        )
    }

    #[test]
    fn headline_average_is_22_6() {
        assert!((measured_average_pj_per_bit() - 22.57).abs() < 0.01);
    }

    #[test]
    fn sense_and_send_message_energy() {
        // §6.3.1: (64 + 19) bits × (27.45 + 22.71 + 17.55) pJ/bit
        // = 5.6 nJ for the 8-byte response on the 3-chip stack.
        let e = message_energy(&msg(8), 3, Calibration::Measured);
        assert!((e.as_nj() - 5.62).abs() < 0.03, "{e}");
    }

    #[test]
    fn simulated_formula_matches_6_2() {
        // E = [3.5 pJ × (19 + 8n)] × n_chips.
        let e = message_energy(&msg(4), 3, Calibration::Simulated);
        let expect = 3.5 * (19.0 + 32.0) * 3.0;
        assert!((e.as_pj() - expect).abs() < 1e-9);
    }

    #[test]
    fn measured_exceeds_simulated_by_about_6_5x() {
        // "We attribute the ~6.5× increase over simulation to
        // overhead such as internal memory buses…"
        let sim = message_energy(&msg(8), 3, Calibration::Simulated);
        let meas = message_energy(&msg(8), 3, Calibration::Measured);
        let ratio = meas / sim;
        assert!((ratio - 6.45).abs() < 0.2, "{ratio}");
    }

    #[test]
    fn idle_power_is_negligible() {
        // 3 chips × 5.6 pW ≪ the 8 nW measured system idle.
        let p = idle_power(3);
        assert!((p.as_pw() - 16.8).abs() < 1e-9);
        assert!(p.as_nw() < 8.0 / 100.0);
    }

    #[test]
    fn goodput_energy_penalizes_short_messages() {
        // Fig. 11b: "MBus efficiency suffers for short (1–2 byte)
        // messages and systems should attempt to coalesce messages".
        let e1 = energy_per_goodput_bit(1, 3, Calibration::Measured);
        let e12 = energy_per_goodput_bit(12, 3, Calibration::Measured);
        assert!(e1 > e12 * 2.0, "1-byte messages pay ~3.4× per bit");
    }

    #[test]
    fn fig11_orderings_hold() {
        use crate::i2c_model::{OracleI2c, StandardI2c};
        let f = 1e6;
        for n in [2usize, 14] {
            let sim = total_power(n, f, Calibration::Simulated);
            let meas = total_power(n, f, Calibration::Measured);
            let oracle = OracleI2c::for_chips(n).total_power(f);
            let std = StandardI2c::at_50pf().total_power(f);
            assert!(sim < meas, "simulated below measured at {n} nodes");
            assert!(
                meas < oracle,
                "measured MBus outperforms Oracle I2C at {n} nodes ({} vs {})",
                meas,
                oracle
            );
            assert!(
                oracle.as_uw() < std.as_uw() * (50.0 / (4.25 * n as f64)).max(1.0),
                "oracle benefits from smaller, known capacitance"
            );
        }
    }

    #[test]
    fn duty_cycled_power_adds_floor_and_activity() {
        let standby = Power::from_nw(8.0);
        let p = duty_cycled_power(
            &msg(8),
            1.0,
            SimTime::from_s(15),
            3,
            standby,
            Calibration::Measured,
        );
        // 5.6 nJ / 15 s ≈ 0.375 nW above the floor.
        assert!((p.as_nw() - 8.375).abs() < 0.01, "{p}");
    }

    #[test]
    #[should_panic(expected = "mediator")]
    fn per_bit_requires_two_chips() {
        let _ = per_bit_system_pj(1, Calibration::Measured);
    }
}
