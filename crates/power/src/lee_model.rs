//! Lee et al.'s "I2C-like" bus (§2.2, citation \[14\]): the pull-up is replaced by
//! active drive plus a bus-keeper, at the cost of a local clock running
//! 5× the bus clock and hand-tuned, process-specific ratioed logic.

use crate::units::{Energy, Power};

/// The paper's summary number: "Lee's system is able to reduce bus
/// energy to 88 pJ/bit (4 times that of MBus)".
pub const LEE_PJ_PER_BIT: f64 = 88.0;

/// How much faster than the bus clock Lee's internal clock must run.
pub const INTERNAL_CLOCK_RATIO: u32 = 5;

/// Energy/feature model for Lee's I2C variant.
///
/// # Example
///
/// ```
/// use mbus_power::lee_model::LeeI2c;
///
/// let lee = LeeI2c::default();
/// assert_eq!(lee.bit_energy().as_pj(), 88.0);
/// // ~4× MBus's measured 22.6 pJ/bit/chip, as §2.2 states.
/// assert!((lee.bit_energy().as_pj() / 22.6 - 3.9).abs() < 0.2);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LeeI2c {
    pj_per_bit: f64,
}

impl Default for LeeI2c {
    fn default() -> Self {
        LeeI2c {
            pj_per_bit: LEE_PJ_PER_BIT,
        }
    }
}

impl LeeI2c {
    /// Energy per transferred bit.
    pub fn bit_energy(&self) -> Energy {
        Energy::from_pj(self.pj_per_bit)
    }

    /// Bus power at `clock_hz` (one bit per cycle).
    pub fn total_power(&self, clock_hz: f64) -> Power {
        Power::from_w(self.pj_per_bit * 1e-12 * clock_hz)
    }

    /// The internal clock frequency the design needs — the §2.2
    /// inefficiency MBus avoids by clocking everything off the bus.
    pub fn internal_clock_hz(&self, bus_clock_hz: u64) -> u64 {
        bus_clock_hz * INTERNAL_CLOCK_RATIO as u64
    }

    /// Overhead bits for an `n`-byte message (same framing as I2C:
    /// 10 + n, Table 1).
    pub fn overhead_bits(&self, payload_bytes: usize) -> u32 {
        10 + payload_bytes as u32
    }

    /// Whether the design is synthesizable from plain HDL. It is not:
    /// "requires hand-tuned, process-specific ratioed logic" (§2.2) —
    /// the key qualitative difference Table 1 records.
    pub fn synthesizable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::i2c_model::OracleI2c;
    use crate::mbus_model::{measured_average_pj_per_bit, SIMULATED_PJ_PER_BIT_PER_CHIP};

    #[test]
    fn lee_sits_between_mbus_and_open_collector_i2c() {
        // §2.2's energy ladder: MBus < Lee < pull-up I2C (at 50 pF).
        let lee = LeeI2c::default().bit_energy().as_pj();
        assert!(measured_average_pj_per_bit() < lee);
        assert!(SIMULATED_PJ_PER_BIT_PER_CHIP < lee);
        let i2c = OracleI2c::new(1.2, crate::units::Capacitance::from_pf(50.0));
        assert!(lee < i2c.bit_energy().as_pj());
    }

    #[test]
    fn lee_is_about_4x_mbus() {
        let ratio = LEE_PJ_PER_BIT / measured_average_pj_per_bit();
        assert!((ratio - 4.0).abs() < 0.15, "{ratio}");
    }

    #[test]
    fn internal_clock_is_5x() {
        let lee = LeeI2c::default();
        assert_eq!(lee.internal_clock_hz(400_000), 2_000_000);
    }

    #[test]
    fn power_scales_linearly() {
        let lee = LeeI2c::default();
        let p400k = lee.total_power(400e3);
        let p4m = lee.total_power(4e6);
        assert!((p4m.as_uw() / p400k.as_uw() - 10.0).abs() < 1e-9);
        assert!((p400k.as_uw() - 35.2).abs() < 0.1);
    }

    #[test]
    fn not_synthesizable() {
        assert!(!LeeI2c::default().synthesizable());
        assert_eq!(LeeI2c::default().overhead_bits(8), 18);
    }
}
