//! Table 2: synthesized size of the MBus components in an industrial
//! 180 nm process, with the OpenCores SPI/I2C and Lee-I2C comparison
//! rows, plus a simple gate/flop area estimator fitted to the data.

use std::fmt;

/// One synthesized module's inventory row.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ModuleArea {
    /// Module name as Table 2 prints it.
    pub name: &'static str,
    /// Verilog source lines.
    pub verilog_sloc: u32,
    /// Combinational gate count.
    pub gates: u32,
    /// Flip-flop count.
    pub flip_flops: u32,
    /// Synthesized area in the 180 nm process, µm².
    pub area_um2: u32,
    /// Whether the module is optional (only power-gated designs need
    /// it).
    pub optional: bool,
}

impl fmt::Display for ModuleArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:>5} {:>6} {:>5} {:>10}",
            self.name, self.verilog_sloc, self.gates, self.flip_flops, self.area_um2
        )
    }
}

/// The MBus component rows of Table 2.
pub const MBUS_MODULES: [ModuleArea; 4] = [
    ModuleArea {
        name: "Bus Controller",
        verilog_sloc: 947,
        gates: 1314,
        flip_flops: 207,
        area_um2: 27_376,
        optional: false,
    },
    ModuleArea {
        name: "Sleep Controller",
        verilog_sloc: 130,
        gates: 25,
        flip_flops: 4,
        area_um2: 3_150,
        optional: true,
    },
    ModuleArea {
        name: "Wire Controller",
        verilog_sloc: 50,
        gates: 7,
        flip_flops: 0,
        area_um2: 882,
        optional: true,
    },
    ModuleArea {
        name: "Interrupt Controller",
        verilog_sloc: 58,
        gates: 21,
        flip_flops: 3,
        area_um2: 2_646,
        optional: true,
    },
];

/// Table 2's totals row ("includes a small amount of additional
/// integration overhead area").
pub const MBUS_TOTAL: ModuleArea = ModuleArea {
    name: "Total",
    verilog_sloc: 1_185,
    gates: 1_367,
    flip_flops: 214,
    area_um2: 37_200,
    optional: false,
};

/// Comparison rows: other buses synthesized for the same process.
pub const OTHER_BUSES: [ModuleArea; 3] = [
    ModuleArea {
        name: "SPI Master",
        verilog_sloc: 516,
        gates: 1_004,
        flip_flops: 229,
        area_um2: 37_068,
        optional: false,
    },
    ModuleArea {
        name: "I2C",
        verilog_sloc: 720,
        gates: 396,
        flip_flops: 153,
        area_um2: 19_813,
        optional: false,
    },
    ModuleArea {
        name: "Lee I2C",
        verilog_sloc: 897,
        gates: 908,
        flip_flops: 278,
        area_um2: 33_703,
        optional: false,
    },
];

/// A three-parameter area model: `area ≈ c + g·gates + f·flip_flops`,
/// least-squares fitted over a set of rows. The intercept `c` captures
/// the fixed integration/routing overhead every hard block pays, which
/// dominates tiny modules like the 7-gate Wire Controller.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AreaModel {
    /// Fixed per-module overhead, µm².
    pub um2_fixed: f64,
    /// µm² per combinational gate.
    pub um2_per_gate: f64,
    /// µm² per flip-flop.
    pub um2_per_flop: f64,
}

impl AreaModel {
    /// Fits the model to rows by unweighted least squares over the
    /// 3×3 normal equations.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three rows are given or the system is
    /// degenerate.
    pub fn fit(rows: &[ModuleArea]) -> Self {
        assert!(rows.len() >= 3, "need at least three rows to fit");
        // Design matrix columns: [1, gates, flops].
        let mut ata = [[0f64; 3]; 3];
        let mut atb = [0f64; 3];
        for r in rows {
            let row = [1.0, r.gates as f64, r.flip_flops as f64];
            let a = r.area_um2 as f64;
            for i in 0..3 {
                for j in 0..3 {
                    ata[i][j] += row[i] * row[j];
                }
                atb[i] += row[i] * a;
            }
        }
        let x = solve3(ata, atb).expect("degenerate fit");
        AreaModel {
            um2_fixed: x[0],
            um2_per_gate: x[1],
            um2_per_flop: x[2],
        }
    }

    /// Estimated area of a hypothetical module.
    pub fn estimate(&self, gates: u32, flip_flops: u32) -> f64 {
        self.um2_fixed + self.um2_per_gate * gates as f64 + self.um2_per_flop * flip_flops as f64
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting; `None` if singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..3 {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            for (x, &p) in rest[0][col..3].iter_mut().zip(&pivot_rows[col][col..3]) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0f64; 3];
    for row in (0..3).rev() {
        let mut sum = b[row];
        for k in (row + 1)..3 {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Renders Table 2 as the paper prints it.
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str("Module                  SLOC  Gates  FFs   Area(um^2)\n");
    for m in MBUS_MODULES {
        out.push_str(&m.to_string());
        out.push('\n');
    }
    out.push_str(&MBUS_TOTAL.to_string());
    out.push_str("\nOther buses:\n");
    for m in OTHER_BUSES {
        out.push_str(&m.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_consistent_with_components() {
        let sloc: u32 = MBUS_MODULES.iter().map(|m| m.verilog_sloc).sum();
        let gates: u32 = MBUS_MODULES.iter().map(|m| m.gates).sum();
        let flops: u32 = MBUS_MODULES.iter().map(|m| m.flip_flops).sum();
        assert_eq!(sloc, MBUS_TOTAL.verilog_sloc);
        assert_eq!(gates, MBUS_TOTAL.gates);
        assert_eq!(flops, MBUS_TOTAL.flip_flops);
        // Area total includes integration overhead beyond the sum.
        let area: u32 = MBUS_MODULES.iter().map(|m| m.area_um2).sum();
        assert!(MBUS_TOTAL.area_um2 >= area);
        assert!(MBUS_TOTAL.area_um2 - area < 4_000, "modest overhead");
    }

    #[test]
    fn non_power_gated_designs_need_only_the_bus_controller() {
        // Table 2 caption: "Non power-gated designs require only the
        // Bus Controller."
        let required: Vec<_> = MBUS_MODULES.iter().filter(|m| !m.optional).collect();
        assert_eq!(required.len(), 1);
        assert_eq!(required[0].name, "Bus Controller");
    }

    #[test]
    fn mbus_area_penalty_is_modest() {
        // "MBus imposes an area cost penalty, but offsets this with its
        // additional features" — within 2× of I2C, comparable to SPI.
        let i2c = OTHER_BUSES[1].area_um2;
        let spi = OTHER_BUSES[0].area_um2;
        assert!(MBUS_TOTAL.area_um2 < 2 * i2c);
        assert!((MBUS_TOTAL.area_um2 as i64 - spi as i64).abs() < 1_000);
    }

    #[test]
    fn fitted_model_predicts_areas_reasonably() {
        let mut rows = Vec::new();
        rows.extend_from_slice(&MBUS_MODULES);
        rows.extend_from_slice(&OTHER_BUSES);
        let model = AreaModel::fit(&rows);
        assert!(model.um2_per_gate > 0.0);
        assert!(
            model.um2_per_flop > model.um2_per_gate,
            "a flop outweighs a gate"
        );
        // Large blocks predicted within 35 %; small blocks are
        // dominated by layout noise, so only require the mean relative
        // error over all rows to stay below 50 %.
        let mut total_err = 0.0;
        for r in &rows {
            let est = model.estimate(r.gates, r.flip_flops);
            let err = (est - r.area_um2 as f64).abs() / r.area_um2 as f64;
            total_err += err;
            if r.area_um2 > 10_000 {
                assert!(err < 0.35, "{}: est {est:.0} vs {}", r.name, r.area_um2);
            }
        }
        assert!(total_err / (rows.len() as f64) < 0.5);
    }

    #[test]
    fn render_matches_paper_shape() {
        let t = render_table2();
        assert!(t.contains("Bus Controller"));
        assert!(
            t.contains("37068".to_string().as_str())
                || t.contains("37,068")
                || t.contains(" 37068")
        );
        assert!(t.lines().count() >= 9);
    }
}
