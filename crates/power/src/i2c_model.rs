//! Open-collector (I2C-style) energy models, derived exactly as §2.1
//! of the paper does.
//!
//! The anchor numbers from the paper, all reproduced by tests below:
//!
//! * relaxed 50 pF fast-mode bus → pull-up R ≤ 15.5 kΩ;
//! * per clock cycle: 23 pJ dumped from the bus capacitance, 116 pJ
//!   burned in the resistor while the line is held low, 35 pJ while
//!   the resistor pulls the line high;
//! * generating the 400 kHz clock alone draws 69.6 µW.
//!
//! Two configurations are modeled:
//!
//! * [`OracleI2c`] — the paper's idealization: bus capacitance known
//!   exactly, resistor sized so the rise consumes the whole half
//!   period, 80 % V<sub>DD</sub> counts as logical 1.
//! * [`StandardI2c`] — fast-mode I2C at a fixed capacitance with the
//!   spec's 300 ns rise-time budget, which forces a small (hungry)
//!   resistor.

use crate::units::{Capacitance, Energy, Power};

/// ln 5 ≈ 1.609: an RC line reaches 80 % of V<sub>DD</sub> after
/// `R·C·ln 5`.
const LN5: f64 = 1.609_437_912_434_100_3;

/// Logical-1 threshold as a fraction of V<sub>DD</sub> (I2C: 80 %).
const LOGIC_HIGH_FRACTION: f64 = 0.8;

/// I2C bus capacitance for an `n`-chip system using the paper's pad
/// model. Table 1's footnote: "When wirebonding, a shared bus requires
/// two pads/chip" — so each chip contributes two 2 pF pads plus
/// 0.25 pF of wire per line.
pub fn shared_bus_capacitance(n_chips: usize) -> Capacitance {
    Capacitance::from_pf(n_chips as f64 * (2.0 * 2.0 + 0.25))
}

/// The "Oracle I2C" of §6.2: exact capacitance known, ideally large
/// pull-up, full-half-period rise times.
///
/// # Example
///
/// ```
/// use mbus_power::i2c_model::OracleI2c;
/// use mbus_power::units::Capacitance;
///
/// // §2.1's relaxed example: 50 pF, 400 kHz.
/// let bus = OracleI2c::new(1.2, Capacitance::from_pf(50.0));
/// let r = bus.pull_up_ohms(400_000.0);
/// assert!((r - 15_500.0).abs() < 100.0);
/// let p = bus.clock_power(400_000.0);
/// assert!((p.as_uw() - 69.6).abs() < 0.5);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OracleI2c {
    vdd: f64,
    capacitance: Capacitance,
    /// Fraction of data bits that are 0 (held low for a full cycle),
    /// charging the data-line pull-up. Default 0.5.
    zero_fraction: f64,
}

impl OracleI2c {
    /// Creates the model for a bus of the given capacitance per line.
    pub fn new(vdd: f64, capacitance: Capacitance) -> Self {
        OracleI2c {
            vdd,
            capacitance,
            zero_fraction: 0.5,
        }
    }

    /// Builds the model for an `n`-chip system using
    /// [`shared_bus_capacitance`].
    pub fn for_chips(n_chips: usize) -> Self {
        OracleI2c::new(1.2, shared_bus_capacitance(n_chips))
    }

    /// Overrides the data-line zero fraction.
    pub fn with_zero_fraction(mut self, f: f64) -> Self {
        self.zero_fraction = f;
        self
    }

    /// The largest pull-up that still reaches 80 % V<sub>DD</sub>
    /// within half a clock period: `R = t_half / (C · ln 5)`.
    pub fn pull_up_ohms(&self, clock_hz: f64) -> f64 {
        let t_half = 0.5 / clock_hz;
        t_half / (self.capacitance.as_f() * LN5)
    }

    /// Energy dumped from the bus capacitance when pulled low
    /// (charged to 80 % V<sub>DD</sub>): §2.1's 23 pJ at 50 pF.
    pub fn dump_energy(&self) -> Energy {
        self.capacitance
            .stored_energy(LOGIC_HIGH_FRACTION * self.vdd)
    }

    /// Energy burned in the pull-up while the line is held low for one
    /// half period: `V²/R · t_half = V² · C · ln 5` — §2.1's 116 pJ.
    /// Notably independent of frequency once R is ideally sized.
    pub fn low_hold_energy(&self) -> Energy {
        Energy::from_j(self.vdd * self.vdd * self.capacitance.as_f() * LN5)
    }

    /// Energy dissipated in the pull-up while it charges the line:
    /// §2.1 approximates ½CV² (35 pJ at 50 pF).
    pub fn rise_energy(&self) -> Energy {
        self.capacitance.stored_energy(self.vdd)
    }

    /// Energy per clock cycle on the SCL line: 23 + 116 + 35 = 174 pJ
    /// at 50 pF.
    pub fn clock_cycle_energy(&self) -> Energy {
        self.dump_energy() + self.low_hold_energy() + self.rise_energy()
    }

    /// §2.1's headline: the power to generate the clock alone
    /// (69.6 µW at 400 kHz / 50 pF).
    pub fn clock_power(&self, clock_hz: f64) -> Power {
        Power::from_w(self.clock_cycle_energy().as_j() * clock_hz)
    }

    /// Average energy per bit on the data line: a 0-bit holds SDA low
    /// for a *full* cycle (twice the clock's half-period burn) plus the
    /// dump/rise switching amortized over transitions.
    pub fn data_bit_energy(&self) -> Energy {
        let hold = Energy::from_j(
            2.0 * self.vdd * self.vdd * self.capacitance.as_f() * LN5 * self.zero_fraction,
        );
        // Transitions occur at bit boundaries with probability
        // 2·p·(1−p); each costs a dump + rise pair.
        let p = self.zero_fraction;
        let switching = (self.dump_energy() + self.rise_energy()) * (2.0 * p * (1.0 - p));
        hold + switching
    }

    /// Total energy per transferred bit (SCL + SDA).
    pub fn bit_energy(&self) -> Energy {
        self.clock_cycle_energy() + self.data_bit_energy()
    }

    /// Total bus power at `clock_hz`, both lines — the Fig. 11a series.
    pub fn total_power(&self, clock_hz: f64) -> Power {
        Power::from_w(self.bit_energy().as_j() * clock_hz)
    }

    /// Energy per *goodput* bit for an `n`-byte payload: I2C charges a
    /// 9-bit frame per byte plus 10 bits of start/address/stop
    /// (Table 1: 10 + n bits of overhead) — the Fig. 11b series.
    pub fn energy_per_goodput_bit(&self, payload_bytes: usize) -> Energy {
        if payload_bytes == 0 {
            return Energy::ZERO;
        }
        let total_bits = 10.0 + 9.0 * payload_bytes as f64;
        let goodput_bits = 8.0 * payload_bytes as f64;
        self.bit_energy() * (total_bits / goodput_bits)
    }
}

/// Standard fast-mode I2C at a fixed bus capacitance: the pull-up must
/// meet the spec's 300 ns rise budget regardless of clock speed, so it
/// burns a frequency-independent static power while any line is low.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StandardI2c {
    vdd: f64,
    capacitance: Capacitance,
    rise_budget_s: f64,
    zero_fraction: f64,
}

impl StandardI2c {
    /// The paper's "Standard I2C at 50 pF" configuration.
    pub fn at_50pf() -> Self {
        StandardI2c {
            vdd: 1.2,
            capacitance: Capacitance::from_pf(50.0),
            rise_budget_s: 300e-9,
            zero_fraction: 0.5,
        }
    }

    /// Pull-up implied by the rise budget: `R = t_rise / (C ln 5)`.
    pub fn pull_up_ohms(&self) -> f64 {
        self.rise_budget_s / (self.capacitance.as_f() * LN5)
    }

    /// The highest clock at which the rise budget still fits in a half
    /// period: fast-mode's 300 ns caps the model at ≈1.67 MHz (the spec
    /// itself stops at 400 kHz).
    pub fn max_feasible_hz(&self) -> f64 {
        0.5 / self.rise_budget_s
    }

    /// Total bus power at `clock_hz`: switching scales with frequency;
    /// resistor burn is a duty-cycle-weighted static draw.
    pub fn total_power(&self, clock_hz: f64) -> Power {
        let switching_per_cycle = self
            .capacitance
            .stored_energy(LOGIC_HIGH_FRACTION * self.vdd)
            + self.capacitance.stored_energy(self.vdd);
        // SCL low half the time; SDA low for `zero_fraction` of bits.
        let low_duty = 0.5 + self.zero_fraction;
        let static_w = self.vdd * self.vdd / self.pull_up_ohms() * low_duty;
        Power::from_w(switching_per_cycle.as_j() * 1.5 * clock_hz + static_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relaxed_50pf() -> OracleI2c {
        OracleI2c::new(1.2, Capacitance::from_pf(50.0))
    }

    #[test]
    fn pull_up_matches_paper() {
        // "This relaxed I2C bus requires a pull-up resistor no greater
        // than 15.5 kΩ."
        let r = relaxed_50pf().pull_up_ohms(400_000.0);
        assert!((r - 15_534.0).abs() < 50.0, "{r}");
    }

    #[test]
    fn cycle_energies_match_paper() {
        let m = relaxed_50pf();
        assert!((m.dump_energy().as_pj() - 23.0).abs() < 0.5);
        assert!((m.low_hold_energy().as_pj() - 116.0).abs() < 1.0);
        assert!((m.rise_energy().as_pj() - 35.0).abs() < 1.5);
        assert!((m.clock_cycle_energy().as_pj() - 174.0).abs() < 2.0);
    }

    #[test]
    fn clock_power_is_69_6_uw() {
        // "Thus, generating the clock alone draws 69.6 µW."
        let p = relaxed_50pf().clock_power(400_000.0);
        assert!((p.as_uw() - 69.6).abs() < 0.5, "{p}");
    }

    #[test]
    fn oracle_scales_with_population() {
        let two = OracleI2c::for_chips(2);
        let fourteen = OracleI2c::for_chips(14);
        assert!(fourteen.bit_energy().as_pj() > 6.0 * two.bit_energy().as_pj());
        // The paper's claim ordering: 151 pJ/bit lost to the pull-up at
        // 50 pF is what MBus eliminates.
        let pull_up_loss = relaxed_50pf().low_hold_energy() + relaxed_50pf().rise_energy();
        assert!((pull_up_loss.as_pj() - 151.0).abs() < 2.0);
    }

    #[test]
    fn standard_exceeds_oracle_at_same_capacitance() {
        // Fig. 11a: standard I2C sits above Oracle I2C throughout the
        // frequencies where the fixed 300 ns rise budget is feasible.
        let std = StandardI2c::at_50pf();
        let oracle = relaxed_50pf();
        assert!((std.max_feasible_hz() - 1.67e6).abs() < 0.01e6);
        for f in [100e3, 400e3, 1e6] {
            assert!(
                std.total_power(f).as_uw() > oracle.total_power(f).as_uw(),
                "at {f} Hz"
            );
        }
    }

    #[test]
    fn standard_power_has_static_floor() {
        let std = StandardI2c::at_50pf();
        let slow = std.total_power(10e3);
        // Even nearly idle, the small pull-up burns hundreds of µW.
        assert!(slow.as_uw() > 200.0, "{slow}");
    }

    #[test]
    fn goodput_energy_decreases_with_payload() {
        let m = OracleI2c::for_chips(14);
        let e1 = m.energy_per_goodput_bit(1);
        let e12 = m.energy_per_goodput_bit(12);
        assert!(e1 > e12);
        assert_eq!(m.energy_per_goodput_bit(0).as_pj(), 0.0);
    }

    #[test]
    fn zero_fraction_is_tunable() {
        let all_ones = relaxed_50pf().with_zero_fraction(0.0);
        assert_eq!(all_ones.data_bit_energy().as_pj(), 0.0);
        let all_zeros = relaxed_50pf().with_zero_fraction(1.0);
        assert!(all_zeros.data_bit_energy() > relaxed_50pf().data_bit_energy());
    }
}
