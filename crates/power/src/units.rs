//! Physical units for energy accounting.
//!
//! Thin `f64` newtypes — enough type safety to keep picojoules,
//! nanowatts, and picofarads from mixing silently, with the arithmetic
//! the models need ([`Energy`] ÷ time → [`Power`], etc.).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use mbus_sim::SimTime;

/// An amount of energy (stored in joules).
///
/// # Example
///
/// ```
/// use mbus_power::units::Energy;
/// use mbus_sim::SimTime;
///
/// let per_bit = Energy::from_pj(22.6);
/// let message = per_bit * 83.0; // 19 + 64 bits
/// assert!((message.as_nj() - 1.8758).abs() < 1e-3);
/// let power = message / SimTime::from_us(207); // 83 cycles at 400 kHz
/// assert!(power.as_uw() > 0.0);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// From joules.
    pub fn from_j(j: f64) -> Self {
        Energy(j)
    }

    /// From millijoules.
    pub fn from_mj(mj: f64) -> Self {
        Energy(mj * 1e-3)
    }

    /// From microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// From nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// From picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// In joules.
    pub fn as_j(self) -> f64 {
        self.0
    }

    /// In millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 * 1e3
    }

    /// In nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 * 1e9
    }

    /// In picojoules.
    pub fn as_pj(self) -> f64 {
        self.0 * 1e12
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<SimTime> for Energy {
    type Output = Power;
    /// Average power over a duration.
    fn div(self, rhs: SimTime) -> Power {
        Power(self.0 / rhs.as_secs_f64())
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0.abs();
        if j >= 1e-3 {
            write!(f, "{:.3} mJ", self.0 * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.3} µJ", self.0 * 1e6)
        } else if j >= 1e-9 {
            write!(f, "{:.3} nJ", self.0 * 1e9)
        } else {
            write!(f, "{:.3} pJ", self.0 * 1e12)
        }
    }
}

/// A power draw (stored in watts).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// From watts.
    pub fn from_w(w: f64) -> Self {
        Power(w)
    }

    /// From microwatts.
    pub fn from_uw(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// From nanowatts.
    pub fn from_nw(nw: f64) -> Self {
        Power(nw * 1e-9)
    }

    /// From picowatts.
    pub fn from_pw(pw: f64) -> Self {
        Power(pw * 1e-12)
    }

    /// In watts.
    pub fn as_w(self) -> f64 {
        self.0
    }

    /// In microwatts.
    pub fn as_uw(self) -> f64 {
        self.0 * 1e6
    }

    /// In nanowatts.
    pub fn as_nw(self) -> f64 {
        self.0 * 1e9
    }

    /// In picowatts.
    pub fn as_pw(self) -> f64 {
        self.0 * 1e12
    }

    /// Energy consumed over `duration` at this power.
    pub fn over(self, duration: SimTime) -> Energy {
        Energy(self.0 * duration.as_secs_f64())
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Div<Power> for Energy {
    type Output = SimTime;
    /// How long this energy lasts at the given power.
    fn div(self, rhs: Power) -> SimTime {
        SimTime::from_ps((self.0 / rhs.0 * 1e12) as u64)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0.abs();
        if w >= 1e-3 {
            write!(f, "{:.3} mW", self.0 * 1e3)
        } else if w >= 1e-6 {
            write!(f, "{:.3} µW", self.0 * 1e6)
        } else if w >= 1e-9 {
            write!(f, "{:.3} nW", self.0 * 1e9)
        } else {
            write!(f, "{:.3} pW", self.0 * 1e12)
        }
    }
}

/// A capacitance (stored in farads).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Capacitance(f64);

impl Capacitance {
    /// Zero capacitance.
    pub const ZERO: Capacitance = Capacitance(0.0);

    /// From farads.
    pub fn from_f(f: f64) -> Self {
        Capacitance(f)
    }

    /// From picofarads.
    pub fn from_pf(pf: f64) -> Self {
        Capacitance(pf * 1e-12)
    }

    /// In farads.
    pub fn as_f(self) -> f64 {
        self.0
    }

    /// In picofarads.
    pub fn as_pf(self) -> f64 {
        self.0 * 1e12
    }

    /// The energy stored at `volts`: ½CV².
    pub fn stored_energy(self, volts: f64) -> Energy {
        Energy(0.5 * self.0 * volts * volts)
    }
}

impl Add for Capacitance {
    type Output = Capacitance;
    fn add(self, rhs: Capacitance) -> Capacitance {
        Capacitance(self.0 + rhs.0)
    }
}

impl Mul<f64> for Capacitance {
    type Output = Capacitance;
    fn mul(self, rhs: f64) -> Capacitance {
        Capacitance(self.0 * rhs)
    }
}

impl fmt::Display for Capacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} pF", self.0 * 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_conversions() {
        assert_eq!(Energy::from_pj(1000.0).as_nj(), 1.0);
        assert_eq!(Energy::from_mj(1.0).as_j(), 1e-3);
        assert!((Energy::from_uj(2.5).as_j() - 2.5e-6).abs() < 1e-18);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = Power::from_nw(8.0); // the paper's 8 nW standby system
        let day = SimTime::from_s(86_400);
        let e = p.over(day);
        assert!((e.as_mj() - 0.6912).abs() < 1e-6);
    }

    #[test]
    fn energy_over_power_is_time() {
        // 27.4 mJ battery at ~7.1 nW lasts ~44.5 days (§6.3.1).
        let battery = Energy::from_mj(27.4);
        let draw = Power::from_nw(7.13);
        let t = battery / draw;
        let days = t.as_secs_f64() / 86_400.0;
        assert!((days - 44.5).abs() < 0.5, "{days}");
    }

    #[test]
    fn capacitor_energy() {
        // ½ × 50 pF × (0.96 V)² = 23 pJ — §2.1's "dumping the charge".
        let c = Capacitance::from_pf(50.0);
        let e = c.stored_energy(0.96);
        assert!((e.as_pj() - 23.04).abs() < 0.1);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Energy::from_pj(22.6).to_string(), "22.600 pJ");
        assert_eq!(Power::from_nw(8.0).to_string(), "8.000 nW");
        assert_eq!(Power::from_uw(69.6).to_string(), "69.600 µW");
        assert_eq!(Capacitance::from_pf(4.25).to_string(), "4.25 pF");
    }

    #[test]
    fn sums() {
        let total: Energy = [Energy::from_pj(1.0), Energy::from_pj(2.0)]
            .into_iter()
            .sum();
        assert!((total.as_pj() - 3.0).abs() < 1e-12);
        let total: Power = [Power::from_nw(1.0), Power::from_nw(2.0)].into_iter().sum();
        assert!((total.as_nw() - 3.0).abs() < 1e-12);
    }
}
