//! CMOS switching-energy accounting over wire-level traces.
//!
//! The wire-level engine records every CLK/DATA transition; charging a
//! segment's capacitance to `V` and dumping it again costs `½CV²` per
//! transition at the driver. This is the same interface-level
//! abstraction PrimeTime applies in the paper's §6.2 simulation.

use mbus_core::engine::BusStats;
use mbus_core::wire::WireBus;
use mbus_sim::{NetId, Trace};

use crate::units::{Capacitance, Energy};

/// Electrical parameters of one ring segment (driver pad → wire →
/// receiver pad).
///
/// The defaults are the paper's §6.2 simulation parameters: 1.2 V,
/// "a conservative pad model, estimating 2 pF per pad", 0.25 pF of
/// wire.
///
/// # Example
///
/// ```
/// use mbus_power::cmos::SegmentModel;
///
/// let seg = SegmentModel::default();
/// assert!((seg.capacitance().as_pf() - 4.25).abs() < 1e-9);
/// // One full transition: ½ × 4.25 pF × 1.2² ≈ 3.06 pJ.
/// assert!((seg.energy_per_edge().as_pj() - 3.06).abs() < 0.01);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SegmentModel {
    /// Supply voltage.
    pub vdd: f64,
    /// Capacitance of one bonding pad.
    pub pad: Capacitance,
    /// Capacitance of the wire between pads.
    pub wire: Capacitance,
}

impl Default for SegmentModel {
    fn default() -> Self {
        SegmentModel {
            vdd: 1.2,
            pad: Capacitance::from_pf(2.0),
            wire: Capacitance::from_pf(0.25),
        }
    }
}

impl SegmentModel {
    /// Total switched capacitance per segment: driver pad + wire +
    /// receiver pad.
    pub fn capacitance(&self) -> Capacitance {
        self.pad + self.wire + self.pad
    }

    /// Energy charged to the driver per transition: ½CV².
    pub fn energy_per_edge(&self) -> Energy {
        self.capacitance().stored_energy(self.vdd)
    }
}

/// Energy accounting for one wire-level bus run.
#[derive(Clone, Debug)]
pub struct EnergyReport {
    /// Energy charged per CLK segment, in ring order.
    pub clk_segments: Vec<Energy>,
    /// Energy charged per DATA segment, in ring order.
    pub data_segments: Vec<Energy>,
}

impl EnergyReport {
    /// Total switching energy over both rings.
    pub fn total(&self) -> Energy {
        self.clk_segments.iter().copied().sum::<Energy>()
            + self.data_segments.iter().copied().sum::<Energy>()
    }

    /// Energy charged to the driver of ring position `i` (the mediator
    /// drives segment 0; member `i` drives segment `i + 1`).
    pub fn driver_energy(&self, i: usize) -> Energy {
        self.clk_segments[i] + self.data_segments[i]
    }
}

/// Charges every traced transition on the given nets against the
/// segment model.
pub fn account_trace(
    trace: &Trace,
    clk: &[NetId],
    data: &[NetId],
    seg: &SegmentModel,
) -> EnergyReport {
    let per_edge = seg.energy_per_edge();
    let charge = |nets: &[NetId]| -> Vec<Energy> {
        nets.iter()
            .map(|&n| per_edge * trace.edge_count(n) as f64)
            .collect()
    };
    EnergyReport {
        clk_segments: charge(clk),
        data_segments: charge(data),
    }
}

/// Convenience: account a [`WireBus`]'s full trace.
pub fn account_bus(bus: &WireBus, seg: &SegmentModel) -> EnergyReport {
    account_trace(bus.trace(), bus.clk_nets(), bus.data_nets(), seg)
}

/// Per-member driver energy from a [`BusStats`] snapshot — the
/// engine-trait route into the §6.2 model.
///
/// `stats.segment_edges[i]` already folds CLK and DATA transitions on
/// the segment member `i` drives, so any [`BusEngine`] run that fills
/// it (the wire engine does) can be charged without keeping the full
/// [`Trace`] alive. The mediator's own drive energy (segment 0) is not
/// attributed to any member and is therefore absent here — use
/// [`account_bus`] when the frontend matters.
///
/// [`BusEngine`]: mbus_core::engine::BusEngine
pub fn driver_energy_from_stats(stats: &BusStats, seg: &SegmentModel) -> Vec<Energy> {
    let per_edge = seg.energy_per_edge();
    stats
        .segment_edges
        .iter()
        .map(|&edges| per_edge * edges as f64)
        .collect()
}

/// First-principles estimate of MBus energy per bit per chip: two CLK
/// transitions per bit plus `data_activity` DATA transitions, each
/// charging one segment.
///
/// With the paper's stated 2 pF pads this yields ≈ 7.6 pJ/bit/chip —
/// about 2.2× the paper's 3.5 pJ PrimeTime result; EXPERIMENTS.md
/// discusses the gap (their post-APR netlist evidently sees less
/// effective pad capacitance than the "conservative" 2 pF estimate).
pub fn mbus_bit_energy_estimate(seg: &SegmentModel, data_activity: f64) -> Energy {
    seg.energy_per_edge() * (2.0 + data_activity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbus_core::wire::WireBusBuilder;
    use mbus_core::{Address, BusConfig, FuId, FullPrefix, NodeSpec, ShortPrefix};

    fn two_node_bus() -> WireBus {
        WireBusBuilder::new(BusConfig::default())
            .node(
                NodeSpec::new("a", FullPrefix::new(0x1).unwrap())
                    .with_short_prefix(ShortPrefix::new(0x1).unwrap()),
            )
            .node(
                NodeSpec::new("b", FullPrefix::new(0x2).unwrap())
                    .with_short_prefix(ShortPrefix::new(0x2).unwrap()),
            )
            .build()
    }

    #[test]
    fn idle_bus_consumes_nothing() {
        let bus = two_node_bus();
        let report = account_bus(&bus, &SegmentModel::default());
        assert_eq!(report.total().as_pj(), 0.0);
    }

    #[test]
    fn transaction_energy_scales_with_length() {
        let seg = SegmentModel::default();
        let mut short = two_node_bus();
        short
            .send_and_run(
                0,
                Address::short(ShortPrefix::new(0x2).unwrap(), FuId::ZERO),
                vec![0xAA; 1],
            )
            .unwrap();
        let e_short = account_bus(&short, &seg).total();

        let mut long = two_node_bus();
        long.send_and_run(
            0,
            Address::short(ShortPrefix::new(0x2).unwrap(), FuId::ZERO),
            vec![0xAA; 32],
        )
        .unwrap();
        let e_long = account_bus(&long, &seg).total();

        assert!(e_long > e_short * 2.0, "{e_long} vs {e_short}");
    }

    #[test]
    fn clock_dominates_for_sparse_data() {
        // An all-zeros payload after the address toggles DATA rarely;
        // CLK toggles twice per cycle everywhere.
        let seg = SegmentModel::default();
        let mut bus = two_node_bus();
        bus.send_and_run(
            0,
            Address::short(ShortPrefix::new(0x2).unwrap(), FuId::ZERO),
            vec![0x00; 16],
        )
        .unwrap();
        let report = account_bus(&bus, &seg);
        let clk: Energy = report.clk_segments.iter().copied().sum();
        let data: Energy = report.data_segments.iter().copied().sum();
        assert!(clk.as_pj() > 3.0 * data.as_pj(), "clk {clk} data {data}");
    }

    #[test]
    fn per_bit_estimate_bounds_measured_trace() {
        // The analytic per-bit estimate should be within 2× of what the
        // traced run actually charges per bit per hop.
        let seg = SegmentModel::default();
        let payload = 64usize;
        let mut bus = two_node_bus();
        bus.send_and_run(
            0,
            Address::short(ShortPrefix::new(0x2).unwrap(), FuId::ZERO),
            (0..payload as u8)
                .map(|i| i.wrapping_mul(37))
                .take(payload)
                .collect(),
        )
        .unwrap();
        let report = account_bus(&bus, &seg);
        let cycles = (19 + 8 * payload) as f64;
        let hops = 3.0; // 2 members + mediator each drive one segment pair
        let traced_per_bit_chip = report.total() / (cycles * hops);
        let estimate = mbus_bit_energy_estimate(&seg, 0.5);
        let ratio = traced_per_bit_chip / estimate;
        assert!(ratio > 0.4 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn stats_route_matches_trace_route_per_member() {
        // The trait-level path (BusStats::segment_edges → energy) must
        // charge each member exactly what the full-trace path charges
        // its driven segment pair.
        use mbus_core::engine::BusEngine;
        use mbus_core::wire::WireEngine;

        let seg = SegmentModel::default();
        let mut e = WireEngine::new(BusConfig::default());
        for i in 0..3u32 {
            e.add_node(
                NodeSpec::new(format!("n{i}"), FullPrefix::new(0x10 + i).unwrap())
                    .with_short_prefix(ShortPrefix::new((i + 1) as u8).unwrap()),
            );
        }
        e.queue(
            0,
            mbus_core::Message::new(
                Address::short(ShortPrefix::new(0x2).unwrap(), FuId::ZERO),
                vec![0xC3; 6],
            ),
        )
        .unwrap();
        e.run_until_quiescent();

        let from_stats = driver_energy_from_stats(&e.stats(), &seg);
        let report = account_bus(e.wire_bus().unwrap(), &seg);
        assert_eq!(from_stats.len(), 3);
        for (i, &energy) in from_stats.iter().enumerate() {
            // Member i drives segment i + 1 (the mediator drives 0).
            let traced = report.driver_energy(i + 1);
            assert!(
                (energy.as_pj() - traced.as_pj()).abs() < 1e-9,
                "member {i}: stats {energy} vs trace {traced}"
            );
        }
        assert!(from_stats.iter().any(|e| e.as_pj() > 0.0));
    }

    #[test]
    fn driver_attribution_covers_total() {
        let seg = SegmentModel::default();
        let mut bus = two_node_bus();
        bus.send_and_run(
            0,
            Address::short(ShortPrefix::new(0x2).unwrap(), FuId::ZERO),
            vec![0x5A; 8],
        )
        .unwrap();
        let report = account_bus(&bus, &seg);
        let by_driver: Energy = (0..report.clk_segments.len())
            .map(|i| report.driver_energy(i))
            .sum();
        assert!((by_driver.as_pj() - report.total().as_pj()).abs() < 1e-9);
    }
}
