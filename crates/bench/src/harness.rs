//! A dependency-free micro-benchmark harness.
//!
//! The build image has no access to a crate registry, so the benches
//! cannot use criterion; this module provides the small slice of it
//! they need: warmup, repeated timed batches, and a median-of-batches
//! report that is robust to scheduler noise.
//!
//! Used by the `[[bench]]` targets (which set `harness = false`) via
//! `cargo bench -p mbus-bench`.

use std::time::Instant;

/// True when `--smoke` was passed to the bench binary (after `--` on
/// the cargo command line). Smoke mode is the CI guard against harness
/// rot: every bench still builds, runs, and prints, but with minimal
/// iteration counts, so the step finishes in seconds and the numbers
/// are meaningless.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Scales a bench's `(iters, batches)` for the current mode: unchanged
/// normally, clamped to at most 2 iterations x 1 batch under
/// [`smoke_mode`]. [`bench()`] applies this itself, so every bench —
/// including ones added later — is covered by the CI smoke step;
/// custom measurement loops outside `bench` can call it directly.
pub fn params(iters: u32, batches: u32) -> (u32, u32) {
    if smoke_mode() {
        (iters.min(2), batches.min(1))
    } else {
        (iters, batches)
    }
}

/// Runs `f` repeatedly and reports the median per-iteration time.
///
/// `f` is invoked `iters` times per batch for `batches` batches after
/// one untimed warmup batch; the printed figure is the median batch
/// divided by `iters`. Under [`smoke_mode`] the counts are clamped via
/// [`params`] before use.
pub fn bench(name: &str, iters: u32, batches: u32, f: impl FnMut()) {
    bench_timed(name, iters, batches, f);
}

/// [`bench()`], but returns the median per-iteration seconds so callers
/// can derive figures across rows (speedup ratios, JSON artifacts,
/// regression gates). Printing is identical to [`bench()`].
pub fn bench_timed(name: &str, iters: u32, batches: u32, f: impl FnMut()) -> f64 {
    let (iters, batches) = params(iters, batches);
    bench_timed_exact(name, iters, batches, f)
}

/// [`bench_timed`] without the [`params`] smoke clamp: the counts are
/// used as given. For rows whose *ratio* feeds a regression gate — a
/// 2×1 smoke sample is fine for "does it still run" but too noisy to
/// compare against a recorded baseline; such rows pick their own
/// reduced smoke counts instead.
pub fn bench_timed_exact(name: &str, iters: u32, batches: u32, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0 && batches > 0, "empty benchmark");
    for _ in 0..iters {
        f(); // warmup
    }
    let mut samples: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<44} {:>12}  (min {} / max {})",
        format_duration(median),
        format_duration(lo),
        format_duration(hi)
    );
    median
}

/// Formats seconds as an adaptive ns/µs/ms/s figure.
pub fn format_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_span_the_units() {
        assert!(format_duration(5e-9).ends_with("ns"));
        assert!(format_duration(5e-6).ends_with("µs"));
        assert!(format_duration(5e-3).ends_with("ms"));
        assert!(format_duration(5.0).ends_with('s'));
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u32;
        bench("noop", 3, 2, || count += 1);
        assert_eq!(count, 3 * 3); // warmup + 2 batches
    }

    #[test]
    fn params_pass_through_outside_smoke_mode() {
        // Cargo's test runner does not pass `--smoke`.
        assert!(!smoke_mode());
        assert_eq!(params(2_000, 5), (2_000, 5));
    }
}
