//! A dependency-free JSON writer for bench artifacts.
//!
//! The bench crate publishes machine-readable results (e.g.
//! `BENCH_interleave.json`, uploaded as a CI artifact) without pulling
//! a serialization dependency into the workspace: [`Json`] is a tiny
//! value tree with a spec-compliant `Display`. Writing is all this
//! module does — the artifacts are consumed by external tooling, so no
//! parser lives here.

use std::fmt;

/// A JSON value. Build it with the `From` impls and
/// [`Json::obj`]/[`Json::arr`], render it with `to_string()`/`{}`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` — also what non-finite floats render as.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered without a fraction.
    U64(u64),
    /// A double. JSON has no NaN/Infinity, so non-finite values render
    /// as `null`.
    F64(f64),
    /// A string, escaped per RFC 8259 on render.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (no sorting, no
    /// dedup — callers pass each key once).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array by converting each item.
    pub fn arr(items: impl IntoIterator<Item = impl Into<Json>>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::F64(x) if !x.is_finite() => f.write_str("null"),
            Json::F64(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        let v = Json::obj([
            ("name", Json::from("interleave")),
            ("ok", Json::from(true)),
            ("count", Json::from(42u64)),
            ("rate", Json::from(1.5)),
            ("shards", Json::arr([1usize, 2, 4])),
            ("none", Json::Null),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"interleave","ok":true,"count":42,"rate":1.5,"shards":[1,2,4],"none":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    /// Torture the escaper with everything that could leak out of a
    /// trace path or parse-error message into a report: every C0
    /// control character, the RFC 8259 two-character escapes, DEL,
    /// quotes-in-quotes, Windows-style path backslashes, and
    /// multi-byte UTF-8. The output must parse back (spot-checked
    /// against the exact expected encoding) and contain no raw control
    /// bytes or unescaped quotes.
    #[test]
    fn escapes_the_torture_string() {
        let mut torture = String::new();
        for c in 0u8..0x20 {
            torture.push(c as char);
        }
        torture.push_str("\"\\C:\\traces\\x.mbt\u{7f}héllo📦 t.mbt:3:7: bad `\"` token");
        let rendered = Json::from(torture.as_str()).to_string();
        // The interior must have no raw control characters and no
        // unescaped quote (every interior `"` is preceded by `\`).
        let interior = &rendered[1..rendered.len() - 1];
        assert!(interior.chars().all(|c| (c as u32) >= 0x20));
        let bytes = interior.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                assert_eq!(bytes[i - 1], b'\\', "unescaped quote at {i}: {rendered}");
            }
        }
        // Exact encodings for each class of character.
        assert!(rendered.contains(r"\u0000"));
        assert!(rendered.contains(r"\u0008"));
        assert!(rendered.contains(r"\t"));
        assert!(rendered.contains(r"\n"));
        assert!(rendered.contains(r"\r"));
        assert!(rendered.contains(r"\u001f"));
        assert!(rendered.contains(r#"\"\\C:\\traces\\x.mbt"#));
        // DEL and non-ASCII pass through verbatim: RFC 8259 only
        // requires escaping `"`, `\`, and U+0000..U+001F.
        assert!(rendered.contains("\u{7f}héllo📦"));
        assert!(rendered.contains(r#"bad `\"` token"#));
        // No double-escaping: `\\` appears once per input backslash
        // (one before 'C', two path separators) and nowhere else.
        assert_eq!(rendered.matches(r"\\").count(), 3);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::from(0.0).to_string(), "0");
    }

    #[test]
    fn preserves_object_order() {
        let v = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }
}
