//! Trace replay, built-in trace exporters, and the JSON report schema
//! behind the `scenario` bin.
//!
//! The bin is a thin argument parser; everything it does lives here so
//! the unit tests can drive it: [`builtin`] materializes the named
//! golden workloads (the generators `tests/corpus/` was exported
//! from), and [`replay_trace`] runs a parsed [`TraceFile`] across
//! every comparable engine kind × fleet schedule and renders one
//! machine-readable [`Json`] report cell per run — signatures as
//! 16-hex-digit digests, gateway counters, per-cluster transaction
//! counts, and the fairness gauges of scheduled drains.

use mbus_core::trace::{fleet_digest, scenario_digest, Trace, TraceFile};
use mbus_core::{
    fleet::GatewayNode, Address, BusConfig, FleetNodeId, FleetSchedule, FleetWorkload, FuId,
    FullPrefix, Message, ShortPrefix, Workload,
};

use crate::json::Json;

/// The built-in trace names [`builtin`] accepts, besides the
/// parameterized `seeded:<n>` / `fleet-seeded:<n>` forms.
pub const BUILTINS: &[&str] = &[
    "storm",
    "storm-14",
    "sense-aggregate",
    "hostile",
    "partial-drain",
    "gateway-forwarding",
    "duty-cycle-day",
    "alarm-cascade",
    "aggregate-fanin",
];

/// Materializes a built-in trace by name: the golden workloads the
/// committed corpus pins, plus `seeded:<n>` / `fleet-seeded:<n>` for
/// exporting any generator seed as a standalone `.mbt` repro.
pub fn builtin(spec: &str) -> Option<TraceFile> {
    if let Some(seed) = spec.strip_prefix("seeded:") {
        let seed: u64 = seed.parse().ok()?;
        return Some(TraceFile::workload(Workload::seeded(seed)).with_seed(seed));
    }
    if let Some(seed) = spec.strip_prefix("fleet-seeded:") {
        let seed: u64 = seed.parse().ok()?;
        return Some(TraceFile::fleet(FleetWorkload::seeded(seed)).with_seed(seed));
    }
    match spec {
        "storm" => Some(TraceFile::workload(Workload::many_node_storm(6, 3))),
        // A ring past the paper's ten-chip stack: a size the replay
        // grid used to skip on the wire engine because every CLK hop
        // paid a heap sift; the wavefront lane makes the cell cheap.
        "storm-14" => Some(TraceFile::workload(Workload::many_node_storm(14, 2))),
        "sense-aggregate" => Some(TraceFile::fleet(FleetWorkload::sense_and_aggregate(
            3, 2, 2,
        ))),
        "hostile" => Some(TraceFile::workload(Workload::fault_injection())),
        "partial-drain" => Some(TraceFile::workload(partial_drain_workload())),
        "gateway-forwarding" => Some(TraceFile::fleet(gateway_forwarding_workload())),
        // The three closed-loop golden shapes at 1000+ bus scale:
        // every one splits into two mesh domains bridged by range
        // routes, so reply traffic takes inter-gateway hops both ways.
        "duty-cycle-day" => Some(TraceFile::fleet(FleetWorkload::duty_cycle_day(1024, 2))),
        // Cascade growth is exponential in fanout (each tripped alarm
        // re-broadcasts), so fanout stays small: 2^horizon ≈ 256
        // alarms sweeping across the 1024-cluster mesh.
        "alarm-cascade" => Some(TraceFile::fleet(FleetWorkload::alarm_cascade(1024, 2))),
        "aggregate-fanin" => Some(TraceFile::fleet(FleetWorkload::aggregate_fanin(1024, 4, 2))),
        _ => None,
    }
}

/// The mid-drain-queueing hostile case as a golden trace: traffic
/// queued while earlier traffic is still pending. Not wire-comparable
/// (partial drains), so the corpus pins analytic ≡ event for it.
fn partial_drain_workload() -> Workload {
    let mut w = Workload::new("corpus/partial_drain", BusConfig::default());
    for i in 0..4u32 {
        w = w.node(
            mbus_core::NodeSpec::new(
                format!("n{i}"),
                FullPrefix::new(0x0300 + i).expect("prefix"),
            )
            .with_short_prefix(ShortPrefix::new((i + 1) as u8).expect("prefix")),
        );
    }
    let to = |n: u8| Address::short(ShortPrefix::new(n).expect("prefix"), FuId::ZERO);
    w.send(1, Message::new(to(1), vec![0x10, 0x11]))
        .send(2, Message::new(to(1), vec![0x20]))
        .send(3, Message::new(to(2), vec![0x30, 0x31, 0x32]))
        .drain_partial(2)
        // Queued mid-drain, against still-pending traffic.
        .send(1, Message::new(to(3), vec![0x40]).with_priority())
        .send(2, Message::new(to(4), vec![0x50]))
        .drain_partial(1)
        .send(3, Message::new(to(1), vec![0x60]))
        .drain()
}

/// The PR 5 gateway-forwarding aliasing surface as a golden trace:
/// remote envelopes in both directions (one priority), an
/// accidental-envelope local send to the reserved forwarding port
/// (bytes that decode as a full address ARE an envelope — forwarded,
/// never aliased into the gateway's local rx), an unroutable envelope
/// (slot `0xE` is never allocated — dropped, attributed to the
/// receiving cluster), and an ordinary local delivery to a non-zero
/// gateway FU (which must stay local).
fn gateway_forwarding_workload() -> FleetWorkload {
    let forward_port = Address::short(
        ShortPrefix::new(0x1).expect("gateway short prefix"),
        FuId::ZERO,
    );
    // Sensor ring-slot 1 on cluster 1 packs as (1 << 4) | 1.
    let sensor_1_1 = FullPrefix::new(0x11).expect("sensor prefix");
    // Slot 0xE of cluster 0 is never allocated: unroutable by design.
    let unroutable = FullPrefix::new(0x0E).expect("unroutable slot");
    FleetWorkload::new("corpus/gateway_forwarding", BusConfig::default())
        .cluster(vec![false, false])
        .cluster(vec![false, true])
        .send_remote_priority(
            FleetNodeId::new(0, 1),
            FleetNodeId::new(1, 1),
            FuId::new(1).expect("fu"),
            vec![0xA0, 0xA1],
        )
        .send_remote(
            FleetNodeId::new(1, 2),
            FleetNodeId::new(0, 2),
            FuId::new(2).expect("fu"),
            vec![0xB0],
        )
        .send_local(
            FleetNodeId::new(0, 1),
            Message::new(
                forward_port,
                GatewayNode::encapsulate(sensor_1_1, FuId::new(3).expect("fu"), &[0x42]),
            ),
        )
        .send_local(
            FleetNodeId::new(0, 2),
            Message::new(
                forward_port,
                GatewayNode::encapsulate(unroutable, FuId::ZERO, &[0x99]),
            ),
        )
        .send_local(
            FleetNodeId::new(1, 1),
            Message::new(
                Address::short(
                    ShortPrefix::new(0x1).expect("gateway short prefix"),
                    FuId::new(2).expect("fu"),
                ),
                vec![0xC0, 0xC1],
            ),
        )
        .allow_wake_nulls()
        .drain()
}

/// The outcome of replaying one trace across the whole grid.
#[derive(Debug)]
pub struct ReplayResult {
    /// The per-trace JSON report node.
    pub json: Json,
    /// Whether every cell produced the same digest AND the pinned
    /// `expect sig=` (if any) matched.
    pub ok: bool,
    /// The digest of the first cell — what `expect sig=` should pin.
    pub digest: u64,
}

/// Replays `tf` across every comparable engine kind; fleet traces also
/// sweep batched / interleaved / `sharded:<n>` for each entry of
/// `shards`. Returns the per-cell report and whether all cells agreed.
pub fn replay_trace(source: &str, tf: &TraceFile, shards: &[usize]) -> ReplayResult {
    let mut cells = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    match &tf.trace {
        Trace::Workload(w) => {
            for kind in tf.trace.comparable_kinds() {
                let report = w.run_on(kind);
                let sig = report.signature();
                let digest = scenario_digest(&sig);
                digests.push(digest);
                cells.push(Json::obj([
                    ("engine", kind.to_string().into()),
                    ("schedule", "single".into()),
                    ("sig", format!("{digest:016x}").into()),
                    ("transactions", sig.records.len().into()),
                    (
                        "deliveries",
                        sig.deliveries
                            .iter()
                            .map(|log| log.len())
                            .sum::<usize>()
                            .into(),
                    ),
                    ("cycles", report.total_cycles().into()),
                ]));
            }
        }
        Trace::Fleet(w) => {
            let mut schedules = vec![FleetSchedule::Batched, FleetSchedule::Interleaved];
            schedules.extend(shards.iter().map(|&s| FleetSchedule::Sharded { shards: s }));
            for kind in tf.trace.comparable_kinds() {
                for &schedule in &schedules {
                    let report = w.run_scheduled_on(kind, schedule);
                    let sig = report.signature();
                    let digest = fleet_digest(&sig);
                    digests.push(digest);
                    let mut fields: Vec<(&'static str, Json)> = vec![
                        ("engine", kind.to_string().into()),
                        ("schedule", schedule.to_string().into()),
                        ("sig", format!("{digest:016x}").into()),
                        ("transactions", (report.transactions() as u64).into()),
                        ("forwarded", report.forwarded.into()),
                        ("hop_forwards", report.hop_forwards.into()),
                        ("dropped", report.dropped.into()),
                        (
                            "cluster_drops",
                            Json::arr(report.cluster_drops.iter().copied()),
                        ),
                        // Per-hop TTL-exhaustion drops (mesh cycles die
                        // at the cluster whose gateway decremented TTL
                        // to zero) and the closed-loop reply gauges:
                        // how many programmed responses the behavior
                        // barriers injected, and how many injection
                        // rounds (the reply-latency proxy) it took to
                        // re-quiesce.
                        ("ttl_drops", Json::arr(report.ttl_drops.iter().copied())),
                        ("injected_replies", report.injected_replies.into()),
                        ("reply_rounds", report.reply_rounds.into()),
                        (
                            "cluster_transactions",
                            Json::arr(sig.clusters.iter().map(|c| c.records.len())),
                        ),
                    ];
                    if let Some(fairness) = &report.fairness {
                        fields.push(("max_turn_gap", fairness.max_turn_gap.into()));
                        fields.push(("epochs", fairness.epochs.into()));
                        fields.push(("shard_imbalance", fairness.shard_imbalance().into()));
                    }
                    cells.push(Json::obj(fields));
                }
            }
        }
    }
    let digest = digests[0];
    let agreed = digests.iter().all(|&d| d == digest);
    let expect_ok = tf.meta.expect_sig.is_none_or(|pinned| pinned == digest);
    let ok = agreed && expect_ok;
    let json = Json::obj([
        ("trace", source.into()),
        ("name", tf.trace.name().into()),
        (
            "kind",
            if tf.trace.is_fleet() {
                "fleet".into()
            } else {
                "workload".into()
            },
        ),
        ("wire_comparable", tf.trace.wire_comparable().into()),
        ("seed", tf.meta.seed.map_or(Json::Null, Json::from)),
        (
            "expect_sig",
            tf.meta
                .expect_sig
                .map_or(Json::Null, |s| format!("{s:016x}").into()),
        ),
        ("agreed", agreed.into()),
        ("expect_ok", expect_ok.into()),
        ("ok", ok.into()),
        ("cells", Json::Arr(cells)),
    ]);
    ReplayResult { json, ok, digest }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_all_materialize_and_replay_clean() {
        for &name in BUILTINS {
            let tf = builtin(name).expect(name);
            let result = replay_trace(name, &tf, &[2]);
            assert!(result.ok, "builtin `{name}` disagreed: {}", result.json);
        }
    }

    #[test]
    fn seeded_specs_materialize() {
        let w = builtin("seeded:7").expect("seeded");
        assert_eq!(w.meta.seed, Some(7));
        assert!(!w.trace.is_fleet());
        let f = builtin("fleet-seeded:7").expect("fleet-seeded");
        assert!(f.trace.is_fleet());
        assert!(builtin("seeded:x").is_none());
        assert!(builtin("no-such").is_none());
    }

    #[test]
    fn builtins_round_trip_through_mbt() {
        for &name in BUILTINS {
            let tf = builtin(name).expect(name);
            let text = tf.to_mbt();
            let parsed = TraceFile::parse_str(name, &text).expect(name);
            let (a, b) = (
                replay_trace(name, &tf, &[2]).digest,
                replay_trace(name, &parsed, &[2]).digest,
            );
            assert_eq!(a, b, "builtin `{name}` changed behavior across round-trip");
        }
    }

    #[test]
    fn gateway_forwarding_exercises_the_aliasing_surface() {
        let tf = builtin("gateway-forwarding").unwrap();
        let Trace::Fleet(w) = &tf.trace else {
            panic!("fleet builtin");
        };
        let report = w.run_on(mbus_core::EngineKind::Analytic);
        assert_eq!(report.forwarded, 3, "two remotes + one accidental envelope");
        assert_eq!(report.dropped, 1, "the unroutable envelope");
        assert_eq!(report.cluster_drops, vec![1, 0], "dropped on cluster 0");
    }

    #[test]
    fn wrong_pin_fails_the_replay() {
        let tf = builtin("storm").unwrap().with_expect_sig(0xDEAD_BEEF);
        let result = replay_trace("storm", &tf, &[]);
        assert!(!result.ok);
        assert_ne!(result.digest, 0xDEAD_BEEF);
    }
}
