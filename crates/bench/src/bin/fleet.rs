//! Gateway-bridged fleet driver: populations no single 14-prefix MBus
//! can hold, engine-generic.
//!
//! Four stages:
//!
//! 1. **Headline fleet** — 16 clusters × 13 sensors + 16 gateway
//!    presences = 224 nodes running the sense-and-aggregate pattern on
//!    the analytic engine, with throughput.
//! 2. **Cross-engine check** — a 104-node cross-cluster storm run on
//!    *both* engines; the [`mbus_core::FleetSignature`]s must be
//!    identical (the fleet-level conformance contract).
//! 3. **Closed-loop vs open-loop** — a duty-cycled request/response
//!    day (reactive behaviors answering through the gateway mesh)
//!    against a matched-population open-loop cross storm, with txn/s
//!    for both and the closed-loop reply share.
//! 4. **Fleet-size sweep** — [`SweepRunner::run_fleet_sizes`] shards
//!    whole fleets across threads, scaling population from 28 to 448
//!    nodes deterministically.
//!
//! Usage: `cargo run --release -p mbus-bench --bin fleet
//! [-- <clusters> <sensors> <rounds>]`

use std::time::Instant;

use mbus_bench::two_col_table;
use mbus_core::{EngineKind, FleetWorkload, SweepRunner};

fn run_headline(clusters: usize, sensors: usize, rounds: usize) {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "workload '{}': {} nodes across {} bridged buses",
        workload.name(),
        workload.total_nodes(),
        clusters,
    );
    let start = Instant::now();
    let report = workload.run_on(EngineKind::Analytic);
    let wall = start.elapsed();
    println!(
        "  [analytic] {} transactions, {} forwarded envelopes, {} deliveries, {} bus cycles in {:.2?} ({:.0} txn/s)\n",
        report.transactions(),
        report.forwarded,
        report.delivered_messages(),
        report.total_cycles(),
        wall,
        report.transactions() as f64 / wall.as_secs_f64(),
    );
}

fn run_crosscheck() {
    let workload = FleetWorkload::cross_storm(8, 12, 1);
    println!(
        "cross-engine check '{}': {} nodes",
        workload.name(),
        workload.total_nodes()
    );
    let mut signatures = Vec::new();
    for kind in EngineKind::ALL {
        let start = Instant::now();
        let report = workload.run_on(kind);
        let wall = start.elapsed();
        println!(
            "  [{:>8}] {} transactions, {} forwarded in {:.2?}",
            kind.name(),
            report.transactions(),
            report.forwarded,
            wall,
        );
        signatures.push(report.signature());
    }
    for (kind, signature) in EngineKind::ALL.iter().zip(&signatures).skip(1) {
        assert_eq!(
            &signatures[0],
            signature,
            "{kind} disagrees with {} on '{}'",
            EngineKind::ALL[0],
            workload.name()
        );
    }
    println!(
        "  cross-check: all {} fleet signatures identical\n",
        signatures.len()
    );
}

/// Closed-loop stage: the duty-cycled request/response day (every
/// request draws a programmed reply back through the two-domain
/// gateway mesh) against an open-loop cross storm on the same cluster
/// count — the throughput cost of reply injection barriers and
/// multi-hop forwarding, in txn/s.
fn run_closed_loop() {
    let clusters = 512;
    let rounds = 4;
    let closed = FleetWorkload::duty_cycle_day(clusters, rounds);
    let open = FleetWorkload::cross_storm(clusters, 1, rounds);
    let mut rates = Vec::new();
    for (label, workload) in [("closed-loop", &closed), ("open-loop", &open)] {
        let start = Instant::now();
        let report = workload.run_on(EngineKind::Analytic);
        let wall = start.elapsed();
        let rate = report.transactions() as f64 / wall.as_secs_f64();
        println!(
            "  [{label:>11}] '{}': {} transactions, {} replies in {} rounds, {} mesh hops in {:.2?} ({:.0} txn/s)",
            workload.name(),
            report.transactions(),
            report.injected_replies,
            report.reply_rounds,
            report.hop_forwards,
            wall,
            rate,
        );
        if label == "closed-loop" {
            let share =
                100.0 * 2.0 * report.injected_replies as f64 / report.transactions().max(1) as f64;
            println!("                reply traffic: {share:.0}% of all transactions");
        }
        rates.push(rate);
    }
    println!(
        "closed-loop throughput: {:.0}% of the open-loop baseline\n",
        100.0 * rates[0] / rates[1].max(f64::MIN_POSITIVE),
    );
}

fn run_size_sweep() {
    let sizes: Vec<(usize, usize)> = vec![(2, 13), (4, 13), (8, 13), (16, 13), (32, 13)];
    let runner = SweepRunner::with_threads(SweepRunner::auto().threads().max(4));
    let start = Instant::now();
    let samples = runner.run_fleet_sizes(EngineKind::Analytic, &sizes, 3);
    let wall = start.elapsed();
    let serial = SweepRunner::serial().run_fleet_sizes(EngineKind::Analytic, &sizes, 3);
    assert_eq!(samples, serial, "sharded fleet sweep diverged from serial");
    println!(
        "fleet-size sweep: {} whole-fleet points in {:.2?} on {} threads, serial-identical: true",
        sizes.len(),
        wall,
        runner.threads(),
    );
    let rows: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| (s.total_nodes as f64, s.total_cycles as f64))
        .collect();
    print!(
        "{}",
        two_col_table(
            "aggregate cost by fleet population (sense-and-aggregate, 3 rounds)",
            "nodes",
            "bus cycles",
            &rows,
        )
    );
    let biggest = samples.last().expect("non-empty sweep");
    println!(
        "largest point: {} clusters x {} sensors = {} nodes, {} transactions, {} forwarded",
        biggest.clusters,
        biggest.sensors_per_cluster,
        biggest.total_nodes,
        biggest.transactions,
        biggest.forwarded,
    );
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();

    println!("=== Gateway-bridged fleets: past the 14-node single-bus limit ===\n");
    match args.as_slice() {
        [clusters, sensors, rounds, ..] => run_headline(*clusters, *sensors, *rounds),
        _ => run_headline(16, 13, 8),
    }
    run_crosscheck();
    println!("closed-loop check: reactive duty-cycle day vs open-loop storm");
    run_closed_loop();
    run_size_sweep();
}
