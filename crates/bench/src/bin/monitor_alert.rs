//! §6.3.2: the monitor-and-alert (motion camera) microbenchmark
//! numbers.

use mbus_systems::imager::{
    frame_time, paper_frame_time, ImagerSystem, TransferAnalysis, IMAGE_BYTES,
};

fn main() {
    println!("=== §6.3.2: Monitor and Alert (motion camera, Fig. 13) ===\n");

    let mut sys = ImagerSystem::new();
    sys.motion_detected();
    let frame = sys.transfer_row_by_row();
    assert_eq!(&frame, sys.captured().unwrap());
    println!("motion wake: 1 null transaction; 160 row messages transferred losslessly");
    println!(
        "bus transactions: {} ({} cycles total)\n",
        sys.bus().stats().transactions,
        sys.bus().stats().busy_cycles
    );

    let a = TransferAnalysis::standard();
    println!("overhead accounting for the {IMAGE_BYTES}-byte image:");
    println!(
        "  MBus, one message   : {:>6} bits of overhead",
        a.mbus_single_bits
    );
    println!(
        "  MBus, 160 rows      : {:>6} bits (+{} bits = {:.2} %)   (paper: 3,021 bits, 1.31 %)",
        a.mbus_rows_bits, a.chunking_extra_bits, a.chunking_percent()
    );
    println!(
        "  I2C, one message    : {:>6} bits (12.5 % of payload)   (paper: 28,810)",
        a.i2c_single_bits
    );
    println!(
        "  I2C, row-by-row     : {:>6} bits (13.2 %)              (paper: 30,400)",
        a.i2c_rows_bits
    );
    println!(
        "  message-oriented ACK reduction: {:.1} % (rows) to {:.2} % (single)  (paper: \"90-99 %\")\n",
        a.ack_overhead_reduction_percent(true),
        a.ack_overhead_reduction_percent(false)
    );

    println!("full-frame transfer time across the tunable clock range:");
    println!("{:>12} {:>16} {:>22}", "clock", "bit-serial", "paper arithmetic");
    for hz in [10_000u64, 400_000, 6_670_000] {
        println!(
            "{:>9} Hz {:>13.1} ms {:>19.1} ms",
            hz,
            frame_time(hz, 160).as_secs_f64() * 1e3,
            paper_frame_time(hz).as_secs_f64() * 1e3
        );
    }
    println!("\nnote: the paper's \"4.2 ms (238 fps) to 2.9 s (0.3 fps)\" figures divide the");
    println!("28,800-BYTE image by the clock; a 1-bit-per-cycle bus needs 8x longer.");
    println!("Our bit-serial times are the physically consistent ones (see EXPERIMENTS.md).");
}
