//! §6.3.2: the monitor-and-alert (motion camera) microbenchmark
//! numbers — the wake-plus-frame-transfer pattern defined once as an
//! engine-generic [`Workload`] and executed on both protocol engines,
//! then the paper's overhead accounting on top.

use mbus_core::{EngineKind, ScenarioReport, Workload};
use mbus_systems::imager::{
    frame_time, paper_frame_time, ImagerSystem, TransferAnalysis, HEIGHT, IMAGE_BYTES, ROW_BYTES,
};

fn report_engine(report: &ScenarioReport) {
    println!(
        "  [{:>8}] {} transactions ({} null wake + {} rows), {} bus cycles",
        report.kind.name(),
        report.records.len(),
        report.records.iter().filter(|r| r.is_null()).count(),
        report.records.iter().filter(|r| !r.is_null()).count(),
        report.total_cycles(),
    );
}

fn main() {
    println!("=== §6.3.2: Monitor and Alert (motion camera, Fig. 13) ===\n");

    // Motion wake + full-height row transfer, once, on both engines.
    // (The wire engine simulates every edge of all 160 row messages —
    // about a quarter-million bus cycles.)
    let workload = Workload::monitor_alert(HEIGHT, ROW_BYTES);
    println!("workload '{}' on both engines:", workload.name());
    let reports: Vec<ScenarioReport> = EngineKind::ALL
        .iter()
        .map(|&kind| workload.run_on(kind))
        .collect();
    for report in &reports {
        report_engine(report);
    }
    assert_eq!(
        reports[0].signature(),
        reports[1].signature(),
        "engines disagree on the monitor-alert record stream"
    );
    println!("  cross-check: signatures identical\n");

    // The full system model (device energies, lossless pixel check).
    let mut sys = ImagerSystem::new();
    sys.motion_detected();
    let frame = sys.transfer_row_by_row();
    assert_eq!(&frame, sys.captured().unwrap());
    println!("motion wake: 1 null transaction; 160 row messages transferred losslessly");
    println!(
        "bus transactions: {} ({} cycles total)\n",
        sys.bus().stats().transactions,
        sys.bus().stats().busy_cycles
    );

    let a = TransferAnalysis::standard();
    println!("overhead accounting for the {IMAGE_BYTES}-byte image:");
    println!(
        "  MBus, one message   : {:>6} bits of overhead",
        a.mbus_single_bits
    );
    println!(
        "  MBus, 160 rows      : {:>6} bits (+{} bits = {:.2} %)   (paper: 3,021 bits, 1.31 %)",
        a.mbus_rows_bits,
        a.chunking_extra_bits,
        a.chunking_percent()
    );
    println!(
        "  I2C, one message    : {:>6} bits (12.5 % of payload)   (paper: 28,810)",
        a.i2c_single_bits
    );
    println!(
        "  I2C, row-by-row     : {:>6} bits (13.2 %)              (paper: 30,400)",
        a.i2c_rows_bits
    );
    println!(
        "  message-oriented ACK reduction: {:.1} % (rows) to {:.2} % (single)  (paper: \"90-99 %\")\n",
        a.ack_overhead_reduction_percent(true),
        a.ack_overhead_reduction_percent(false)
    );

    println!("full-frame transfer time across the tunable clock range:");
    println!(
        "{:>12} {:>16} {:>22}",
        "clock", "bit-serial", "paper arithmetic"
    );
    for hz in [10_000u64, 400_000, 6_670_000] {
        println!(
            "{:>9} Hz {:>13.1} ms {:>19.1} ms",
            hz,
            frame_time(hz, 160).as_secs_f64() * 1e3,
            paper_frame_time(hz).as_secs_f64() * 1e3
        );
    }
    println!("\nnote: the paper's \"4.2 ms (238 fps) to 2.9 s (0.3 fps)\" figures divide the");
    println!("28,800-BYTE image by the clock; a 1-bit-per-cycle bus needs 8x longer.");
    println!("Our bit-serial times are the physically consistent ones (see EXPERIMENTS.md).");
}
