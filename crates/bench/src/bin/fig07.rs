//! Fig. 7: MBus interjection and control — the end of a message from
//! node 2 to node 1, ACK'd in the two-cycle control phase.

use mbus_core::wire::WireBusBuilder;
use mbus_core::{Address, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix};
use mbus_sim::{SimTime, WaveformRenderer};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn main() {
    println!("=== Fig. 7: MBus Interjection and Control ===\n");

    let mut bus = WireBusBuilder::new(BusConfig::default())
        .node(NodeSpec::new("node1", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
        .node(NodeSpec::new("node2", FullPrefix::new(0x2).unwrap()).with_short_prefix(sp(0x2)))
        .node(NodeSpec::new("node3", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
        .build();

    // Node 2 transmits one byte to node 1; node 3 forwards.
    bus.queue(
        1,
        Message::new(Address::short(sp(0x1), FuId::ZERO), vec![0xA7]),
    )
    .unwrap();
    let records = bus.run_until_quiescent(50_000_000);
    let r = &records[0];

    println!(
        "transaction: {} cycles, control = {}",
        r.cycles,
        r.control.map(|c| c.to_string()).unwrap_or_default()
    );
    println!(
        "payload delivered to node1: {:02x?}\n",
        bus.take_rx(0)[0].payload
    );

    // Window over the tail: last data bits, interjection, control.
    let period = SimTime::from_ns(2_500);
    let tail_cycles = 14u64;
    let start = r.idle_at.saturating_sub(period * tail_cycles);
    let nets = vec![
        bus.clk_nets()[0],
        bus.clk_nets()[2], // CLK out of node 2 (the transmitter's hold)
        bus.data_nets()[0],
        bus.data_nets()[2], // DATA out of node 2
    ];
    let wave = WaveformRenderer::new()
        .from(start)
        .until(r.idle_at + SimTime::from_us(2))
        .sample_every(SimTime::from_ns(312))
        .label_width(8)
        .render(bus.trace(), &nets);
    println!(
        "tail of the transaction (note CLK held high while DATA toggles — the interjection):\n"
    );
    println!("{wave}");
    println!("events: TX requests interjection by holding CLK | mediator toggles DATA |");
    println!("        control bit 0 (EoM, high) | control bit 1 (ACK, low) | idle");
}
