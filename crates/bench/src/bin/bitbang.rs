//! §6.6: bitbanging MBus — worst-case ISR path and maximum bus clock.

use mbus_mcu::bitbang;

fn main() {
    println!("=== §6.6: Bitbanging MBus ===\n");

    let worst = bitbang::worst_case_path();
    println!("worst-case path to drive an output in response to an edge:");
    println!(
        "  {} instructions, {} cycles including interrupt entry and exit",
        worst.instructions, worst.cycles
    );
    println!("  (paper: 20 instructions, 65 cycles)\n");

    println!("maximum supportable MBus clock:");
    for mhz in [1u64, 4, 8, 16] {
        println!(
            "  {:>2} MHz core: {:>7.1} kHz",
            mhz,
            bitbang::max_bus_clock_hz(mhz * 1_000_000) as f64 / 1e3
        );
    }
    println!("  (paper: \"up to a 120 kHz MBus clock\" at 8 MHz)\n");

    let i2c = bitbang::i2c_bitbang_longest_path();
    println!("bitbang I2C comparator (Wikipedia implementation):");
    println!(
        "  longest path {} instructions, {} cycles   (paper: 21 instructions)",
        i2c.instructions, i2c.cycles
    );
}
