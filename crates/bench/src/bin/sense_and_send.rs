//! §6.3.1: the sense-and-send microbenchmark numbers — defined once as
//! an engine-generic [`Workload`] and executed on *both* protocol
//! engines, then the paper's energy arithmetic on top.

use mbus_core::{Address, FuId, Message, ShortPrefix};
use mbus_core::{EngineKind, ScenarioReport, Workload};
use mbus_power::mbus_model::{message_energy, Calibration};
use mbus_systems::temperature::{Routing, SenseAndSendComparison, TemperatureSystem};

/// Prints one engine's view of the workload — the same function for
/// every engine, which is the point of the `BusEngine` layer.
fn report_engine(report: &ScenarioReport) {
    println!(
        "  [{:>8}] {} transactions ({} self-wake nulls), {} bus cycles, {} deliveries",
        report.kind.name(),
        report.records.len(),
        report.records.iter().filter(|r| r.is_null()).count(),
        report.total_cycles(),
        report.delivered_messages(),
    );
}

fn main() {
    println!("=== §6.3.1: Sense and Send (temperature system, Fig. 12) ===\n");

    // The transaction pattern, once, on both engines.
    let workload = Workload::sense_and_send(3);
    println!("workload '{}' on both engines:", workload.name());
    let reports: Vec<ScenarioReport> = EngineKind::ALL
        .iter()
        .map(|&kind| workload.run_on(kind))
        .collect();
    for report in &reports {
        report_engine(report);
    }
    assert_eq!(
        reports[0].signature(),
        reports[1].signature(),
        "engines disagree on the sense-and-send record stream"
    );
    println!("  cross-check: signatures identical\n");

    // The message-energy arithmetic, exactly as printed in the paper.
    let dest = Address::short(ShortPrefix::new(0x3).unwrap(), FuId::ZERO);
    let eight = Message::new(dest, vec![0; 8]);
    let e_msg = message_energy(&eight, 3, Calibration::Measured);
    println!("8-byte message, 3-chip stack:");
    println!(
        "  (64+19) bits x (27.45 TX + 22.71 RX + 17.55 FWD) pJ/bit = {e_msg}   (paper: 5.6 nJ)"
    );
    println!(
        "  sending it twice (via the processor) would cost {}",
        e_msg * 2.0
    );
    println!("  plus 50 cycles x 20 pJ/cycle = 1 nJ of processor relay handling\n");

    let mut sys = TemperatureSystem::new(Routing::Direct);
    sys.run_events(5);
    let e = sys.average_event_energy();
    println!("full event (measured on the running system):");
    println!(
        "  bus {} + devices {} = {}   (paper: ~100 nJ)",
        e.bus,
        e.devices,
        e.total()
    );
    println!(
        "  bus utilization {:.4} % at 400 kHz   (paper: 0.0022 %)\n",
        sys.utilization() * 100.0
    );

    let cmp = SenseAndSendComparison::run(5);
    println!("any-to-any vs processor-relay routing:");
    println!("  direct:        {} / event", cmp.direct);
    println!("  via processor: {} / event", cmp.via_processor);
    println!(
        "  saving {} (~{:.1} %)   (paper: 6.6 nJ, ~7 %)",
        cmp.savings(),
        cmp.savings() / cmp.direct * 100.0
    );
    println!(
        "  lifetime on the 2 µAh battery: {:.1} -> {:.1} days (+{:.0} h)   (paper: 44.5 -> 47.5, +71 h)",
        cmp.via_days,
        cmp.direct_days,
        cmp.extension_hours()
    );
}
