//! Fig. 9: maximum MBus clock frequency vs. node count — signals must
//! traverse the whole ring (10 ns per hop) within one clock period.

use mbus_bench::two_col_table;
use mbus_systems::many_node::fig9_series;

fn main() {
    println!("=== Fig. 9: Maximum Frequency vs. Node Count ===\n");
    let rows: Vec<(f64, f64)> = fig9_series()
        .into_iter()
        .map(|(n, hz)| (n as f64, hz as f64 / 1e6))
        .collect();
    print!(
        "{}",
        two_col_table(
            "max bus clock for 10 ns node-to-node delay",
            "nodes",
            "max clock (MHz)",
            &rows,
        )
    );
    println!("\npaper anchors: 2 nodes -> 50 MHz ceiling; 14 nodes -> 7.1 MHz");
    println!("(\"For the maximum of 14 short-addressed nodes, MBus could support a 7.1 MHz bus clock.\")");
}
