//! Many-node contention storms (§6.4 flavor), engine-generic: the same
//! [`Workload`] floods rings of increasing population on both protocol
//! engines, cross-checks the record streams, and reports throughput.
//!
//! Usage: `cargo run -p mbus-bench --bin storm [-- <nodes> <rounds>]`
//! (defaults: every population 2..=14, 3 rounds).

use std::time::Instant;

use mbus_bench::two_col_table;
use mbus_core::{EngineKind, SweepRunner, Workload};

fn run_population(nodes: usize, rounds: usize) {
    let workload = Workload::many_node_storm(nodes, rounds);
    println!("workload '{}':", workload.name());
    let mut signatures = Vec::new();
    for kind in EngineKind::ALL {
        let start = Instant::now();
        let report = workload.run_on(kind);
        let wall = start.elapsed();
        println!(
            "  [{:>8}] {} transactions, {} bus cycles, {} deliveries in {:.2?}",
            kind.name(),
            report.records.len(),
            report.total_cycles(),
            report.delivered_messages(),
            wall,
        );
        signatures.push(report.signature());
    }
    for (kind, signature) in EngineKind::ALL.iter().zip(&signatures).skip(1) {
        assert_eq!(
            &signatures[0],
            signature,
            "{kind} disagrees with {} on '{}'",
            EngineKind::ALL[0],
            workload.name()
        );
    }
    println!(
        "  cross-check: all {} signatures identical\n",
        signatures.len()
    );
}

/// Steady-state batched throughput: one long-lived 14-node analytic
/// engine (shared with the `engines` bench via
/// [`mbus_bench::storm_ring`]), one storm round queued and drained per
/// iteration through the native batched kernel
/// ([`mbus_core::AnalyticBus::run_until_quiescent_with`]) — the fast
/// path the ISSUE-2 batching work targets.
fn run_batched_throughput(rounds: usize) {
    let mut bus = mbus_bench::storm_ring();
    let mut transactions = 0u64;
    let start = Instant::now();
    for round in 0..rounds {
        mbus_bench::queue_storm_round(&mut bus, round);
        bus.run_until_quiescent_with(|_r| transactions += 1);
        bus.take_rx(0);
    }
    let wall = start.elapsed();
    println!(
        "batched steady-state drain (14 nodes, {rounds} rounds): {} transactions in {:.2?} ({:.0} txn/s)\n",
        transactions,
        wall,
        transactions as f64 / wall.as_secs_f64(),
    );
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();

    println!("=== Many-node storm: one workload, both engines ===\n");
    match args.as_slice() {
        [nodes, rounds, ..] => run_population(*nodes, *rounds),
        _ => {
            run_population(4, 3);
            run_population(14, 3);
        }
    }

    run_batched_throughput(512);

    // Analytic-engine population sweep, sharded across threads (at
    // least 4 workers even on small machines).
    let populations: Vec<usize> = (2..=14).collect();
    let runner = SweepRunner::with_threads(SweepRunner::auto().threads().max(4));
    let rows: Vec<(f64, f64)> = runner
        .run(&populations, |&n| {
            let report = Workload::many_node_storm(n, 3).run_on(EngineKind::Analytic);
            (n as f64, report.total_cycles() as f64)
        })
        .into_iter()
        .collect();
    print!(
        "{}",
        two_col_table(
            &format!(
                "storm cost by population (analytic engine, {} sweep threads)",
                runner.threads()
            ),
            "nodes",
            "bus cycles",
            &rows,
        )
    );
}
