//! Table 3: measured MBus power draw by role, plus the simulation
//! anchor and the measured/simulated gap the paper discusses in §6.2.

use mbus_core::{Address, FuId, Message, ShortPrefix};
use mbus_power::mbus_model::message_energy;
use mbus_power::mbus_model::{
    measured_average_pj_per_bit, Calibration, MEASURED_FWD_PJ_PER_BIT, MEASURED_RX_PJ_PER_BIT,
    MEASURED_TX_PJ_PER_BIT, SIMULATED_IDLE_PW_PER_CHIP, SIMULATED_PJ_PER_BIT_PER_CHIP,
};

fn main() {
    println!("=== Table 3: Measured MBus Power Draw ===\n");
    println!("{:<36}{:>14}", "", "Energy per bit");
    println!(
        "{:<36}{:>11.2} pJ",
        "Member+Mediator Node sending", MEASURED_TX_PJ_PER_BIT
    );
    println!(
        "{:<36}{:>11.2} pJ",
        "Member Node receiving", MEASURED_RX_PJ_PER_BIT
    );
    println!(
        "{:<36}{:>11.2} pJ",
        "Member Node forwarding", MEASURED_FWD_PJ_PER_BIT
    );
    println!(
        "{:<36}{:>11.2} pJ",
        "Average",
        measured_average_pj_per_bit()
    );

    println!("\nPrimeTime simulation (§6.2):");
    println!("  {SIMULATED_PJ_PER_BIT_PER_CHIP} pJ/bit/chip transmitting, {SIMULATED_IDLE_PW_PER_CHIP} pW/chip idle");

    let dest = Address::short(ShortPrefix::new(0x3).expect("prefix"), FuId::ZERO);
    let msg = Message::new(dest, vec![0; 8]);
    let sim = message_energy(&msg, 3, Calibration::Simulated);
    let meas = message_energy(&msg, 3, Calibration::Measured);
    println!("\n8-byte message on the 3-chip stack:");
    println!(
        "  simulated {sim}, measured {meas} (ratio {:.1}x)",
        meas / sim
    );
    println!("  paper attributes the ~6.5x gap to non-isolatable chip overheads");
    println!(
        "\npaper §6.3.1 check: (64+19) bits x (27.45+22.71+17.55) pJ/bit = {meas} (paper: 5.6 nJ)"
    );
}
