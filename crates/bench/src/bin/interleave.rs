//! Interleaved event-engine fleet driver: thousands of cooperative
//! buses on ONE thread — then tens of thousands across the persistent
//! sharded runtime.
//!
//! Where the `fleet` bin scales population by draining each cluster
//! bus to quiescence in turn, this bin exercises the serving shape:
//! every cluster runs on a cooperative `EventEngine` (the analytic
//! kernel behind a resumable `poll_transaction` step) and the
//! `InterleavedScheduler` round-robins one transaction per bus per
//! round — all buses make progress together, no bus ever blocks the
//! thread.
//!
//! Five stages:
//!
//! 1. **Headline interleave** — 1024 event-engine buses (1024 × 3
//!    sensors + 1024 gateway presences = 4096 nodes) running
//!    sense-and-aggregate under the interleaved schedule, with
//!    throughput in txn/s.
//! 2. **Worker scaling** — 8192 event-engine buses (32768 nodes) at 1,
//!    2, 4, and 8 workers, each count run twice: spawn-per-epoch
//!    (`ShardedFleet::per_epoch_spawn`, the PR 5 shape) vs the
//!    persistent pool with measured load balancing
//!    (`ShardedFleet::new`). Both streams are asserted bit-identical
//!    to the single-threaded interleaved reference; per-shard
//!    transaction and wall-time gauges come from
//!    `FleetFairness::shard_transactions`/`shard_wall_nanos`.
//! 3. **64k-bus fleet** — a 65536-cluster, 262144-node cross-storm
//!    drained by the persistent pool, the population headline.
//! 4. **Schedule equivalence check** — the same workload, batched vs
//!    interleaved: the per-cluster `FleetSignature`s must be
//!    identical (the schedule-independence contract
//!    `tests/interleaved_fleet.rs` pins).
//! 5. **Engine-kind × fleet-size grid** —
//!    `SweepRunner::run_engine_fleet_grid` shards whole fleets over
//!    analytic × event kinds and growing populations,
//!    serial-identical — and re-run under the sharded schedule, which
//!    must produce the identical samples (schedule-independence at
//!    sweep scale).
//!
//! Every stage's numbers are also written to `BENCH_interleave.json`
//! in the working directory (CI uploads it as an artifact).
//!
//! Usage: `cargo run --release -p mbus-bench --bin interleave
//! [-- <clusters> <sensors> <rounds>] [-- --smoke]`

use std::time::Instant;

use mbus_bench::harness::smoke_mode;
use mbus_bench::json::Json;
use mbus_bench::two_col_table;
use mbus_core::{EngineKind, FleetReport, FleetSchedule, FleetWorkload, ShardedFleet, SweepRunner};

fn run_headline(clusters: usize, sensors: usize, rounds: usize) -> Json {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "workload '{}': {} nodes across {} event-engine buses, one thread",
        workload.name(),
        workload.total_nodes(),
        clusters,
    );
    let start = Instant::now();
    let report = workload.run_scheduled_on(EngineKind::Event, FleetSchedule::Interleaved);
    let wall = start.elapsed();
    let txn_s = report.transactions() as f64 / wall.as_secs_f64();
    println!(
        "  [event/interleaved] {} transactions, {} forwarded envelopes, {} deliveries in {:.2?} ({:.0} txn/s)\n",
        report.transactions(),
        report.forwarded,
        report.delivered_messages(),
        wall,
        txn_s,
    );
    Json::obj([
        ("clusters", clusters.into()),
        ("nodes", workload.total_nodes().into()),
        ("rounds", rounds.into()),
        ("transactions", (report.transactions() as u64).into()),
        ("forwarded", report.forwarded.into()),
        ("wall_s", wall.as_secs_f64().into()),
        ("txn_per_s", txn_s.into()),
    ])
}

/// One timed sharded drain; asserts the stream matches `reference` bit
/// for bit and returns `(report, txn/s)`.
fn timed_drain(
    workload: &FleetWorkload,
    sharded: &mut ShardedFleet,
    reference: &FleetReport,
    label: &str,
) -> (FleetReport, f64) {
    let start = Instant::now();
    let report = workload.run_sharded_on(EngineKind::Event, sharded);
    let wall = start.elapsed();
    assert_eq!(
        reference.records, report.records,
        "{label} stream diverged from interleaved"
    );
    assert_eq!(
        reference.signature(),
        report.signature(),
        "{label} signature diverged from interleaved"
    );
    let txn_s = report.transactions() as f64 / wall.as_secs_f64();
    (report, txn_s)
}

fn run_worker_scaling(clusters: usize, sensors: usize, rounds: usize, smoke: bool) -> Json {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "worker scaling '{}': {} nodes across {} event-engine buses",
        workload.name(),
        workload.total_nodes(),
        clusters,
    );
    // Always include multi-worker rows (they stay correct when
    // oversubscribed); speedup materializes with the cores to back it.
    let worker_counts: Vec<usize> = if smoke { vec![1, 4] } else { vec![1, 2, 4, 8] };
    // The single-threaded interleaved drain is both the correctness
    // reference (bit-identical streams) and the throughput baseline.
    let start = Instant::now();
    let reference = workload.run_scheduled_on(EngineKind::Event, FleetSchedule::Interleaved);
    let ref_wall = start.elapsed();
    let base_txn_s = reference.transactions() as f64 / ref_wall.as_secs_f64();
    println!(
        "  [interleaved] {} txns in {:>8.2?} ({:>9.0} txn/s) — single-threaded baseline",
        reference.transactions(),
        ref_wall,
        base_txn_s,
    );
    let mut rows = Vec::new();
    for &workers in &worker_counts {
        // The PR 5 shape: fresh scoped threads every epoch, static
        // contiguous shards.
        let mut spawn = ShardedFleet::per_epoch_spawn(workers);
        let (_, spawn_txn_s) = timed_drain(&workload, &mut spawn, &reference, "spawn-per-epoch");
        // The persistent pool with measured load balancing.
        let mut pool = ShardedFleet::new(workers);
        let (report, pool_txn_s) = timed_drain(&workload, &mut pool, &reference, "persistent");
        let fairness = report.fairness.as_ref().expect("sharded drains report");
        let (txn_lo, txn_hi) = (
            fairness
                .shard_transactions
                .iter()
                .min()
                .copied()
                .unwrap_or(0),
            fairness
                .shard_transactions
                .iter()
                .max()
                .copied()
                .unwrap_or(0),
        );
        // Per-shard throughput: each shard's transactions over its own
        // accumulated wall time.
        let shard_txn_s: Vec<f64> = fairness
            .shard_transactions
            .iter()
            .zip(&fairness.shard_wall_nanos)
            .map(|(&txns, &nanos)| txns as f64 / (nanos.max(1) as f64 / 1e9))
            .collect();
        println!(
            "  [{workers:>2} worker{}] spawn {:>9.0} txn/s | pool {:>9.0} txn/s ({:>4.2}x spawn, {:>4.2}x baseline)",
            if workers == 1 { " " } else { "s" },
            spawn_txn_s,
            pool_txn_s,
            pool_txn_s / spawn_txn_s,
            pool_txn_s / base_txn_s,
        );
        println!(
            "      per-shard txns {txn_lo}..{txn_hi}, wall imbalance {:.2}x, shard txn/s {:.0}..{:.0} | max turn gap {}, epochs {}",
            fairness.shard_imbalance(),
            shard_txn_s.iter().cloned().fold(f64::INFINITY, f64::min),
            shard_txn_s.iter().cloned().fold(0.0, f64::max),
            fairness.max_turn_gap,
            fairness.epochs,
        );
        rows.push(Json::obj([
            ("workers", workers.into()),
            ("spawn_txn_per_s", spawn_txn_s.into()),
            ("pool_txn_per_s", pool_txn_s.into()),
            ("pool_speedup_vs_spawn", (pool_txn_s / spawn_txn_s).into()),
            ("pool_speedup_vs_baseline", (pool_txn_s / base_txn_s).into()),
            (
                "shard_transactions",
                Json::arr(fairness.shard_transactions.iter().copied()),
            ),
            (
                "shard_wall_nanos",
                Json::arr(fairness.shard_wall_nanos.iter().copied()),
            ),
            ("shard_wall_imbalance", fairness.shard_imbalance().into()),
        ]));
    }
    println!("  worker-scaling check: every stream identical to single-threaded interleave\n");
    Json::obj([
        ("clusters", clusters.into()),
        ("nodes", workload.total_nodes().into()),
        ("rounds", rounds.into()),
        ("baseline_txn_per_s", base_txn_s.into()),
        ("rows", Json::Arr(rows)),
    ])
}

fn run_fleet_64k() -> Json {
    // The population headline: 65536 clusters — every FullPrefix
    // cluster field value — of 3 always-on sensors plus a gateway
    // presence, 262144 nodes, every message crossing clusters.
    let clusters = 65536usize;
    let sensors = 3usize;
    let workload = FleetWorkload::cross_storm(clusters, sensors, 1);
    let workers = SweepRunner::auto().threads().clamp(1, 8);
    println!(
        "64k-bus fleet '{}': {} nodes across {} buses on {} workers",
        workload.name(),
        workload.total_nodes(),
        clusters,
        workers,
    );
    let mut sharded = ShardedFleet::new(workers);
    let start = Instant::now();
    let report = workload.run_sharded_on(EngineKind::Event, &mut sharded);
    let wall = start.elapsed();
    // Every sensor's one message is remote, so the gateway forwarded
    // exactly clusters × sensors envelopes — a cheap completion check
    // that doesn't need a second (reference) drain at this scale.
    assert_eq!(
        report.forwarded,
        (clusters * sensors) as u64,
        "64k cross-storm forwarded count"
    );
    let txn_s = report.transactions() as f64 / wall.as_secs_f64();
    let fairness = report.fairness.as_ref().expect("sharded drains report");
    println!(
        "  [{} workers] {} txns, {} forwarded in {:.2?} ({:.0} txn/s), wall imbalance {:.2}x\n",
        workers,
        report.transactions(),
        report.forwarded,
        wall,
        txn_s,
        fairness.shard_imbalance(),
    );
    Json::obj([
        ("clusters", clusters.into()),
        ("nodes", workload.total_nodes().into()),
        ("workers", workers.into()),
        ("transactions", (report.transactions() as u64).into()),
        ("forwarded", report.forwarded.into()),
        ("wall_s", wall.as_secs_f64().into()),
        ("txn_per_s", txn_s.into()),
        ("shard_wall_imbalance", fairness.shard_imbalance().into()),
    ])
}

fn run_schedule_check(clusters: usize, sensors: usize, rounds: usize) {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "schedule check '{}': {} nodes",
        workload.name(),
        workload.total_nodes()
    );
    let mut signatures = Vec::new();
    for schedule in [FleetSchedule::Batched, FleetSchedule::Interleaved] {
        let start = Instant::now();
        let report = workload.run_scheduled_on(EngineKind::Event, schedule);
        let wall = start.elapsed();
        println!(
            "  [{:>11}] {} transactions in {:.2?}",
            schedule.to_string(),
            report.transactions(),
            wall,
        );
        signatures.push(report.signature());
    }
    assert_eq!(
        signatures[0],
        signatures[1],
        "schedules disagree on '{}'",
        workload.name()
    );
    println!("  schedule check: per-cluster fleet signatures identical\n");
}

fn run_engine_grid(smoke: bool) {
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(4, 3), (16, 3)]
    } else {
        vec![(16, 3), (64, 3), (256, 3), (1024, 3)]
    };
    let kinds = [EngineKind::Analytic, EngineKind::Event];
    let runner = SweepRunner::with_threads(SweepRunner::auto().threads().max(4));
    let start = Instant::now();
    let grid = runner.run_engine_fleet_grid(&kinds, &sizes, 2);
    let wall = start.elapsed();
    let serial = SweepRunner::serial().run_engine_fleet_grid(&kinds, &sizes, 2);
    assert_eq!(grid, serial, "sharded engine grid diverged from serial");
    // Schedule-independence at sweep scale: the same grid drained
    // through the sharded schedule must produce identical samples.
    let sharded = runner.run_engine_fleet_grid_scheduled(
        &kinds,
        &sizes,
        2,
        FleetSchedule::Sharded { shards: 4 },
    );
    assert_eq!(grid, sharded, "sharded-schedule grid diverged from batched");
    println!(
        "engine-kind x fleet-size grid: {} whole-fleet points in {:.2?} on {} threads, serial-identical: true, sharded-schedule-identical: true",
        grid.len(),
        wall,
        runner.threads(),
    );
    for kind in kinds {
        let rows: Vec<(f64, f64)> = grid
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| (s.total_nodes as f64, s.transactions as f64))
            .collect();
        print!(
            "{}",
            two_col_table(
                &format!("transactions by population ({kind} engine, 2 rounds)"),
                "nodes",
                "transactions",
                &rows,
            )
        );
    }
}

fn main() {
    let smoke = smoke_mode();
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();

    println!("=== Interleaved fleets: thousands of cooperative buses on one thread ===\n");
    let (clusters, sensors, rounds) = match args.as_slice() {
        [c, s, r, ..] => (*c, *s, *r),
        // Smoke mode keeps the 1024-bus shape but runs one round so CI
        // finishes in seconds.
        _ if smoke => (1024, 3, 1),
        _ => (1024, 3, 8),
    };
    let headline = run_headline(clusters, sensors, rounds);
    // The worker-scaling stage drives 8192 buses in both modes (one
    // round in smoke so CI still exercises the full comparison shape).
    let scaling = if smoke {
        run_worker_scaling(8192, 3, 1, true)
    } else {
        run_worker_scaling(8192, 3, 4, false)
    };
    // The 64k stage runs in smoke too — CI's artifact carries the
    // population headline.
    let fleet_64k = run_fleet_64k();
    if smoke {
        run_schedule_check(32, 3, 1);
    } else {
        run_schedule_check(256, 3, 2);
    }
    run_engine_grid(smoke);

    let artifact = Json::obj([
        ("bench", "interleave".into()),
        ("smoke", smoke.into()),
        ("headline", headline),
        ("worker_scaling", scaling),
        ("fleet_64k", fleet_64k),
    ]);
    std::fs::write("BENCH_interleave.json", format!("{artifact}\n"))
        .expect("write BENCH_interleave.json");
    println!("\nwrote BENCH_interleave.json");
}
