//! Interleaved event-engine fleet driver: thousands of cooperative
//! buses on ONE thread.
//!
//! Where the `fleet` bin scales population by draining each cluster
//! bus to quiescence in turn, this bin exercises the serving shape:
//! every cluster runs on a cooperative `EventEngine` (the analytic
//! kernel behind a resumable `poll_transaction` step) and the
//! `InterleavedScheduler` round-robins one transaction per bus per
//! round — all buses make progress together, no bus ever blocks the
//! thread.
//!
//! Four stages:
//!
//! 1. **Headline interleave** — 1024 event-engine buses (1024 × 3
//!    sensors + 1024 gateway presences = 4096 nodes) running
//!    sense-and-aggregate under the interleaved schedule, with
//!    throughput in txn/s.
//! 2. **Sharded interleave** — 8192 event-engine buses (32768 nodes)
//!    partitioned across `ShardedFleet` worker threads, with per-shard
//!    transaction counts, fairness/starvation gauges, and speedup over
//!    the one-worker run; the one-worker record stream must equal the
//!    single-threaded interleaved reference bit for bit.
//! 3. **Schedule equivalence check** — the same workload, batched vs
//!    interleaved: the per-cluster `FleetSignature`s must be
//!    identical (the schedule-independence contract
//!    `tests/interleaved_fleet.rs` pins).
//! 4. **Engine-kind × fleet-size grid** —
//!    `SweepRunner::run_engine_fleet_grid` shards whole fleets over
//!    analytic × event kinds and growing populations,
//!    serial-identical — and re-run under the sharded schedule, which
//!    must produce the identical samples (schedule-independence at
//!    sweep scale).
//!
//! Usage: `cargo run --release -p mbus-bench --bin interleave
//! [-- <clusters> <sensors> <rounds>] [-- --smoke]`

use std::time::Instant;

use mbus_bench::harness::smoke_mode;
use mbus_bench::two_col_table;
use mbus_core::{EngineKind, FleetSchedule, FleetWorkload, SweepRunner};

fn run_headline(clusters: usize, sensors: usize, rounds: usize) {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "workload '{}': {} nodes across {} event-engine buses, one thread",
        workload.name(),
        workload.total_nodes(),
        clusters,
    );
    let start = Instant::now();
    let report = workload.run_scheduled_on(EngineKind::Event, FleetSchedule::Interleaved);
    let wall = start.elapsed();
    println!(
        "  [event/interleaved] {} transactions, {} forwarded envelopes, {} deliveries in {:.2?} ({:.0} txn/s)\n",
        report.transactions(),
        report.forwarded,
        report.delivered_messages(),
        wall,
        report.transactions() as f64 / wall.as_secs_f64(),
    );
}

fn run_sharded(clusters: usize, sensors: usize, rounds: usize, smoke: bool) {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "sharded interleave '{}': {} nodes across {} event-engine buses",
        workload.name(),
        workload.total_nodes(),
        clusters,
    );
    // Always include multi-worker rows (they stay correct when
    // oversubscribed); speedup materializes with the cores to back it.
    let max_workers = SweepRunner::auto().threads().max(4);
    let worker_counts: Vec<usize> = if smoke {
        vec![1, 4]
    } else {
        let mut counts = vec![1usize, 2, 4, 8, 16];
        counts.retain(|&w| w <= max_workers);
        counts
    };
    // The PR 4 baseline shape on this very workload: the
    // single-threaded interleaved drain. The one-worker sharded run
    // must match its throughput (within noise) and its records (bit
    // for bit).
    let start = Instant::now();
    let reference = workload.run_scheduled_on(EngineKind::Event, FleetSchedule::Interleaved);
    let ref_wall = start.elapsed();
    let base_txn_s = reference.transactions() as f64 / ref_wall.as_secs_f64();
    println!(
        "  [interleaved] {} txns in {:>8.2?} ({:>9.0} txn/s) — single-threaded baseline",
        reference.transactions(),
        ref_wall,
        base_txn_s,
    );
    for &workers in &worker_counts {
        let start = Instant::now();
        let report = workload.run_scheduled_on(
            EngineKind::Event,
            FleetSchedule::Sharded { shards: workers },
        );
        let wall = start.elapsed();
        let txn_s = report.transactions() as f64 / wall.as_secs_f64();
        if workers == 1 {
            // The one-worker sharded drain must reproduce the
            // single-threaded interleaved stream bit for bit.
            assert_eq!(
                reference.records, report.records,
                "one-worker sharded stream diverged from interleaved"
            );
            assert_eq!(reference.signature(), report.signature());
        }
        let fairness = report.fairness.as_ref().expect("sharded drains report");
        // Per-shard transaction totals, re-derived from the contiguous
        // partition the drain used.
        let chunk = clusters.div_ceil(workers.min(clusters));
        let per_shard: Vec<u64> = fairness
            .cluster_transactions
            .chunks(chunk)
            .map(|c| c.iter().sum())
            .collect();
        let (lo, hi) = (
            per_shard.iter().min().copied().unwrap_or(0),
            per_shard.iter().max().copied().unwrap_or(0),
        );
        println!(
            "  [{workers:>2} worker{}] {} txns in {:>8.2?} ({:>9.0} txn/s, {:>4.2}x) | per-shard txns {lo}..{hi}, max turn gap {}, hog {}, epochs {}",
            if workers == 1 { " " } else { "s" },
            report.transactions(),
            wall,
            txn_s,
            txn_s / base_txn_s,
            fairness.max_turn_gap,
            fairness.max_cluster_epoch_transactions,
            fairness.epochs,
        );
    }
    println!("  sharded check: one-worker stream identical to single-threaded interleave\n");
}

fn run_schedule_check(clusters: usize, sensors: usize, rounds: usize) {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "schedule check '{}': {} nodes",
        workload.name(),
        workload.total_nodes()
    );
    let mut signatures = Vec::new();
    for schedule in [FleetSchedule::Batched, FleetSchedule::Interleaved] {
        let start = Instant::now();
        let report = workload.run_scheduled_on(EngineKind::Event, schedule);
        let wall = start.elapsed();
        println!(
            "  [{:>11}] {} transactions in {:.2?}",
            schedule.to_string(),
            report.transactions(),
            wall,
        );
        signatures.push(report.signature());
    }
    assert_eq!(
        signatures[0],
        signatures[1],
        "schedules disagree on '{}'",
        workload.name()
    );
    println!("  schedule check: per-cluster fleet signatures identical\n");
}

fn run_engine_grid(smoke: bool) {
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(4, 3), (16, 3)]
    } else {
        vec![(16, 3), (64, 3), (256, 3), (1024, 3)]
    };
    let kinds = [EngineKind::Analytic, EngineKind::Event];
    let runner = SweepRunner::with_threads(SweepRunner::auto().threads().max(4));
    let start = Instant::now();
    let grid = runner.run_engine_fleet_grid(&kinds, &sizes, 2);
    let wall = start.elapsed();
    let serial = SweepRunner::serial().run_engine_fleet_grid(&kinds, &sizes, 2);
    assert_eq!(grid, serial, "sharded engine grid diverged from serial");
    // Schedule-independence at sweep scale: the same grid drained
    // through the sharded schedule must produce identical samples.
    let sharded = runner.run_engine_fleet_grid_scheduled(
        &kinds,
        &sizes,
        2,
        FleetSchedule::Sharded { shards: 4 },
    );
    assert_eq!(grid, sharded, "sharded-schedule grid diverged from batched");
    println!(
        "engine-kind x fleet-size grid: {} whole-fleet points in {:.2?} on {} threads, serial-identical: true, sharded-schedule-identical: true",
        grid.len(),
        wall,
        runner.threads(),
    );
    for kind in kinds {
        let rows: Vec<(f64, f64)> = grid
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| (s.total_nodes as f64, s.transactions as f64))
            .collect();
        print!(
            "{}",
            two_col_table(
                &format!("transactions by population ({kind} engine, 2 rounds)"),
                "nodes",
                "transactions",
                &rows,
            )
        );
    }
}

fn main() {
    let smoke = smoke_mode();
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();

    println!("=== Interleaved fleets: thousands of cooperative buses on one thread ===\n");
    let (clusters, sensors, rounds) = match args.as_slice() {
        [c, s, r, ..] => (*c, *s, *r),
        // Smoke mode keeps the 1024-bus shape but runs one round so CI
        // finishes in seconds.
        _ if smoke => (1024, 3, 1),
        _ => (1024, 3, 8),
    };
    run_headline(clusters, sensors, rounds);
    // The sharded stage drives ≥8192 buses in both modes (one round in
    // smoke so CI still exercises the full worker-scaling shape).
    if smoke {
        run_sharded(8192, 3, 1, true);
    } else {
        run_sharded(8192, 3, 4, false);
    }
    if smoke {
        run_schedule_check(32, 3, 1);
    } else {
        run_schedule_check(256, 3, 2);
    }
    run_engine_grid(smoke);
}
