//! Interleaved event-engine fleet driver: thousands of cooperative
//! buses on ONE thread.
//!
//! Where the `fleet` bin scales population by draining each cluster
//! bus to quiescence in turn, this bin exercises the serving shape:
//! every cluster runs on a cooperative `EventEngine` (the analytic
//! kernel behind a resumable `poll_transaction` step) and the
//! `InterleavedScheduler` round-robins one transaction per bus per
//! round — all buses make progress together, no bus ever blocks the
//! thread.
//!
//! Three stages:
//!
//! 1. **Headline interleave** — 1024 event-engine buses (1024 × 3
//!    sensors + 1024 gateway presences = 4096 nodes) running
//!    sense-and-aggregate under the interleaved schedule, with
//!    throughput in txn/s.
//! 2. **Schedule equivalence check** — the same workload, batched vs
//!    interleaved: the per-cluster `FleetSignature`s must be
//!    identical (the schedule-independence contract
//!    `tests/interleaved_fleet.rs` pins).
//! 3. **Engine-kind × fleet-size grid** —
//!    `SweepRunner::run_engine_fleet_grid` shards whole fleets over
//!    analytic × event kinds and growing populations,
//!    serial-identical.
//!
//! Usage: `cargo run --release -p mbus-bench --bin interleave
//! [-- <clusters> <sensors> <rounds>] [-- --smoke]`

use std::time::Instant;

use mbus_bench::harness::smoke_mode;
use mbus_bench::two_col_table;
use mbus_core::{EngineKind, FleetSchedule, FleetWorkload, SweepRunner};

fn run_headline(clusters: usize, sensors: usize, rounds: usize) {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "workload '{}': {} nodes across {} event-engine buses, one thread",
        workload.name(),
        workload.total_nodes(),
        clusters,
    );
    let start = Instant::now();
    let report = workload.run_scheduled_on(EngineKind::Event, FleetSchedule::Interleaved);
    let wall = start.elapsed();
    println!(
        "  [event/interleaved] {} transactions, {} forwarded envelopes, {} deliveries in {:.2?} ({:.0} txn/s)\n",
        report.transactions(),
        report.forwarded,
        report.delivered_messages(),
        wall,
        report.transactions() as f64 / wall.as_secs_f64(),
    );
}

fn run_schedule_check(clusters: usize, sensors: usize, rounds: usize) {
    let workload = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    println!(
        "schedule check '{}': {} nodes",
        workload.name(),
        workload.total_nodes()
    );
    let mut signatures = Vec::new();
    for schedule in [FleetSchedule::Batched, FleetSchedule::Interleaved] {
        let start = Instant::now();
        let report = workload.run_scheduled_on(EngineKind::Event, schedule);
        let wall = start.elapsed();
        println!(
            "  [{:>11}] {} transactions in {:.2?}",
            schedule.to_string(),
            report.transactions(),
            wall,
        );
        signatures.push(report.signature());
    }
    assert_eq!(
        signatures[0],
        signatures[1],
        "schedules disagree on '{}'",
        workload.name()
    );
    println!("  schedule check: per-cluster fleet signatures identical\n");
}

fn run_engine_grid(smoke: bool) {
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(4, 3), (16, 3)]
    } else {
        vec![(16, 3), (64, 3), (256, 3), (1024, 3)]
    };
    let kinds = [EngineKind::Analytic, EngineKind::Event];
    let runner = SweepRunner::with_threads(SweepRunner::auto().threads().max(4));
    let start = Instant::now();
    let grid = runner.run_engine_fleet_grid(&kinds, &sizes, 2);
    let wall = start.elapsed();
    let serial = SweepRunner::serial().run_engine_fleet_grid(&kinds, &sizes, 2);
    assert_eq!(grid, serial, "sharded engine grid diverged from serial");
    println!(
        "engine-kind x fleet-size grid: {} whole-fleet points in {:.2?} on {} threads, serial-identical: true",
        grid.len(),
        wall,
        runner.threads(),
    );
    for kind in kinds {
        let rows: Vec<(f64, f64)> = grid
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| (s.total_nodes as f64, s.transactions as f64))
            .collect();
        print!(
            "{}",
            two_col_table(
                &format!("transactions by population ({kind} engine, 2 rounds)"),
                "nodes",
                "transactions",
                &rows,
            )
        );
    }
}

fn main() {
    let smoke = smoke_mode();
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();

    println!("=== Interleaved fleets: thousands of cooperative buses on one thread ===\n");
    let (clusters, sensors, rounds) = match args.as_slice() {
        [c, s, r, ..] => (*c, *s, *r),
        // Smoke mode keeps the 1024-bus shape but runs one round so CI
        // finishes in seconds.
        _ if smoke => (1024, 3, 1),
        _ => (1024, 3, 8),
    };
    run_headline(clusters, sensors, rounds);
    if smoke {
        run_schedule_check(32, 3, 1);
    } else {
        run_schedule_check(256, 3, 2);
    }
    run_engine_grid(smoke);
}
