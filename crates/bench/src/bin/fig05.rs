//! Fig. 5: MBus arbitration — node 1 requests the bus, node 3 claims it
//! through the priority round. Rendered from the wire-level engine's
//! actual trace.

use mbus_core::wire::WireBusBuilder;
use mbus_core::{Address, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix};
use mbus_sim::{SimTime, WaveformRenderer};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn main() {
    println!("=== Fig. 5: MBus Arbitration (with priority round) ===\n");

    let mut bus = WireBusBuilder::new(BusConfig::default())
        .node(NodeSpec::new("node1", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
        .node(NodeSpec::new("node2", FullPrefix::new(0x2).unwrap()).with_short_prefix(sp(0x2)))
        .node(NodeSpec::new("node3", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
        .build();

    // The paper's scenario: node 1 requests; node 3 wants the bus with
    // priority and claims it in the priority-arbitration cycle.
    bus.queue(
        0,
        Message::new(Address::short(sp(0x2), FuId::ZERO), vec![0xB1]),
    )
    .unwrap();
    bus.queue(
        2,
        Message::new(Address::short(sp(0x2), FuId::ZERO), vec![0xC3]).with_priority(),
    )
    .unwrap();
    let records = bus.run_until_quiescent(50_000_000);

    // Node 3's priority message wins the first transaction.
    let rx = bus.take_rx(1);
    println!(
        "delivery order: 0x{:02x} then 0x{:02x}  (0xc3 = node 3's priority message first)\n",
        rx[0].payload[0], rx[1].payload[0]
    );

    // Render the first transaction's arbitration region: CLK, then the
    // DATA segments around each node (data[i] = into node i).
    let start = records[0].request_at;
    let window = SimTime::from_us(30); // ~12 bus cycles at 400 kHz
    let mut nets = vec![bus.clk_nets()[0]];
    nets.extend_from_slice(bus.data_nets());
    let wave = WaveformRenderer::new()
        .from(start)
        .until(start + window)
        .sample_every(SimTime::from_ns(625)) // quarter cycle
        .label_width(8)
        .render(bus.trace(), &nets);
    println!("CLK (mediator out) and DATA ring segments");
    println!("(data0 = mediator->node1, data1 = node1->node2, …):\n");
    println!("{wave}");
    println!("cycle guide: |arb|prio|rsvd|addr x8|data…  (drive on falling, latch on rising)");
    println!(
        "transaction cycles: {} (= 19 + 8x1 payload byte)",
        records[0].cycles
    );
}
