//! Fig. 15: parallel MBus goodput — extra DATA lines stripe payload
//! bits while the protocol elements stay serial.

use mbus_bench::multi_series_table;
use mbus_core::ParallelMbus;

fn main() {
    println!("=== Fig. 15: Parallel MBus Goodput (400 kHz bus clock) ===\n");
    let lanes: Vec<ParallelMbus> = (1..=4).map(|w| ParallelMbus::new(w).unwrap()).collect();
    let names = [
        "1 DATA wire",
        "2 DATA wires",
        "3 DATA wires",
        "4 DATA wires",
    ];
    let rows: Vec<(f64, Vec<f64>)> = (0..=128usize)
        .step_by(8)
        .map(|n| {
            (
                n as f64,
                lanes
                    .iter()
                    .map(|p| p.goodput_bps(n, 400_000) / 1e3)
                    .collect(),
            )
        })
        .collect();
    print!(
        "{}",
        multi_series_table(
            "goodput (kbit/s) vs payload (bytes)",
            "bytes",
            &names,
            &rows
        )
    );
    println!("\nasymptotes: each DATA line adds ~400 kbit/s; overhead dominates short messages.");
    println!(
        "pin cost: {} pins for 1 lane -> {} pins for 4 lanes",
        lanes[0].pin_count(),
        lanes[3].pin_count()
    );
    println!(
        "backward compatible: lane 0 carries all protocol elements; the mediator is unmodified."
    );
}
