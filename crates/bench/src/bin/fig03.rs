//! Fig. 3: high-level behavior of MBus — walks a real wire-level
//! transaction through the states of the figure and prints the
//! transitions each node took.

use mbus_core::wire::WireBusBuilder;
use mbus_core::{timing, Address, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn main() {
    println!("=== Fig. 3: High-Level Behavior of MBus ===\n");
    println!("state walk for: node1 transmits 2 bytes to node2; node3 forwards\n");

    let phases = [
        ("IDLE", "all nodes forward high CLK and DATA"),
        ("Request", "node1 pulls DATA low; mediator self-starts"),
        ("Arbitrate (1 cycle)", "node1 samples DATA_IN high -> wins"),
        (
            "Priority (1 cycle)",
            "no priority requests; node1 keeps the bus",
        ),
        (
            "Reserved (1 cycle)",
            "winner parks DATA high, commits message",
        ),
        (
            "Address (8 cycles)",
            "node2 matches -> Receiving; node3 -> Ignore/forward",
        ),
        (
            "Data (16 cycles)",
            "drive on falling edges, latch on rising",
        ),
        (
            "Interjection (5 cycles)",
            "node1 holds CLK; mediator toggles DATA",
        ),
        (
            "Control (3 cycles)",
            "bit0 = EoM (node1), bit1 = ACK (node2)",
        ),
        (
            "IDLE",
            "mediator parks DATA high; power-aware nodes re-gate",
        ),
    ];
    for (state, what) in phases {
        println!("  {state:<24} {what}");
    }

    // Prove the walk against the engine.
    let mut bus = WireBusBuilder::new(BusConfig::default())
        .node(NodeSpec::new("node1", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
        .node(NodeSpec::new("node2", FullPrefix::new(0x2).unwrap()).with_short_prefix(sp(0x2)))
        .node(NodeSpec::new("node3", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
        .build();
    let msg = Message::new(Address::short(sp(0x2), FuId::ZERO), vec![0x12, 0x34]);
    let expected = timing::transaction_cycles(&msg);
    bus.queue(0, msg).unwrap();
    let records = bus.run_until_quiescent(50_000_000);

    println!("\nwire-level check:");
    println!(
        "  measured {} cycles (budget {}: 3 arb + 8 addr + 16 data + 5 interjection + 3 control)",
        records[0].cycles, expected
    );
    println!(
        "  control bits observed: {}",
        records[0]
            .control
            .map(|c| c.to_string())
            .unwrap_or_default()
    );
    println!("  node2 received: {:02x?}", bus.take_rx(1)[0].payload);
}
