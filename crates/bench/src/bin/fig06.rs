//! Fig. 6: MBus wakeup — a power-gated node self-wakes with a null
//! transaction; the mediator finds no arbitration winner and raises a
//! general error, and the generated clock edges wake the node's
//! hierarchical power domains.

use mbus_core::wire::WireBusBuilder;
use mbus_core::{BusConfig, FullPrefix, NodeSpec, ShortPrefix};
use mbus_sim::{SimTime, WaveformRenderer};

fn main() {
    println!("=== Fig. 6: MBus Wakeup (null transaction) ===\n");

    let mut bus = WireBusBuilder::new(BusConfig::default())
        .node(
            NodeSpec::new("cpu", FullPrefix::new(0x1).unwrap())
                .with_short_prefix(ShortPrefix::new(0x1).unwrap()),
        )
        .node(
            NodeSpec::new("imager", FullPrefix::new(0x2).unwrap())
                .with_short_prefix(ShortPrefix::new(0x2).unwrap())
                .power_aware(true),
        )
        .build();

    println!(
        "imager fully power-gated: bus_ctl={}, layer={}",
        bus.bus_ctl_on(1),
        bus.layer_on(1)
    );
    println!("motion detector asserts the interrupt port…\n");
    bus.request_wakeup(1).unwrap();
    let records = bus.run_until_quiescent(50_000_000);

    let r = &records[0];
    println!(
        "null transaction: {} cycles, control = {} (the \"General Error\")",
        r.cycles,
        r.control.map(|c| c.to_string()).unwrap_or_default()
    );
    println!("wake events on the imager: {}\n", bus.wake_events(1));

    let start = r.request_at;
    let nets = vec![
        bus.clk_nets()[0],
        bus.data_nets()[0],
        bus.data_nets()[1],
        bus.data_nets()[2],
    ];
    let wave = WaveformRenderer::new()
        .from(start)
        .until(r.idle_at + SimTime::from_us(3))
        .sample_every(SimTime::from_ns(625))
        .label_width(8)
        .render(bus.trace(), &nets);
    println!("{wave}");
    println!("regions: request | mediator wakeup | arbitration (no winner) | interjection | control | idle");
}
