//! Fig. 2: waveforms of I2C and variants — traditional I2C, the
//! "unbalanced clock" idea, and Lee's I2C-like bus with its 5× internal
//! clock. The traditional trace comes from the real bit-level I2C
//! engine; the variants are rendered from the same transfer.

use mbus_baselines::i2c::{I2cBus, LineState, RegisterSlave};
use mbus_power::lee_model::INTERNAL_CLOCK_RATIO;

fn strip(name: &str, levels: &[bool]) -> String {
    let mut s = format!("{name:<14}|");
    for &l in levels {
        s.push(if l { '\u{203e}' } else { '_' });
    }
    s
}

fn main() {
    println!("=== Fig. 2: Waveforms of I2C and Variants ===\n");

    // One-byte I2C write captured from the functional engine.
    let mut bus = I2cBus::new();
    bus.attach(0x50, RegisterSlave::new());
    bus.write(0x50, &[0b1010_0001]).unwrap();
    let wf: Vec<LineState> = bus.waveform().to_vec();
    // Double each half-cycle for readability.
    let scl: Vec<bool> = wf.iter().flat_map(|s| [s.scl, s.scl]).collect();
    let sda: Vec<bool> = wf.iter().flat_map(|s| [s.sda, s.sda]).collect();

    println!("Traditional I2C (START, addr+W, ACK, data byte, ACK, STOP):");
    println!("{}", strip("SCL", &scl));
    println!("{}", strip("SDA", &sda));
    println!("  shaded cost: pull-up burns V^2/R the whole time each line is held low\n");

    // Unbalanced clock: same bits, SCL low phase shortened to 1/4 —
    // lets R nearly double, but (as §2.2 argues) does not reduce the
    // energy burned *while pulling up* nor on zero-data bits.
    let unbalanced: Vec<bool> = wf
        .iter()
        .flat_map(|s| {
            if s.scl {
                vec![true, true, true]
            } else {
                vec![false]
            }
        })
        .collect();
    let sda_unb: Vec<bool> = wf
        .iter()
        .flat_map(|s| {
            if s.scl {
                vec![s.sda, s.sda, s.sda]
            } else {
                vec![s.sda]
            }
        })
        .collect();
    println!("Proposed unbalanced improvement (short low phase):");
    println!("{}", strip("SCL", &unbalanced));
    println!("{}", strip("SDA", &sda_unb));
    println!(
        "  rejected: \"does not reduce the energy consumed by the pull-up while pulling up\"\n"
    );

    // Lee I2C variant: actively driven, but needs an internal clock at
    // 5x the bus clock (rendered under the bus clock).
    let internal: Vec<bool> = (0..scl.len() * INTERNAL_CLOCK_RATIO as usize / 2)
        .map(|i| i % 2 == 0)
        .take(scl.len())
        .collect();
    println!("Lee I2C variant [14] (bus keeper replaces pull-up):");
    println!("{}", strip("SCL", &scl));
    println!("{}", strip("SDA", &sda));
    println!("{}", strip("Internal CLK", &internal));
    println!(
        "  cost: a local clock at {INTERNAL_CLOCK_RATIO}x the bus rate + process-tuned ratioed logic (88 pJ/bit)"
    );
    println!("\nMBus eliminates both the pull-up and the fast internal clock (22.6 pJ/bit/chip).");
}
