//! Table 2: synthesized size of the MBus components (180 nm), with the
//! fitted gate/flop area model's predictions alongside.

use mbus_power::area::{render_table2, AreaModel, MBUS_MODULES, MBUS_TOTAL, OTHER_BUSES};

fn main() {
    println!("=== Table 2: Size of MBus Components (180 nm) ===\n");
    print!("{}", render_table2());

    let mut rows = Vec::new();
    rows.extend_from_slice(&MBUS_MODULES);
    rows.extend_from_slice(&OTHER_BUSES);
    let model = AreaModel::fit(&rows);
    println!(
        "\nfitted area model: {:.0} µm² fixed + {:.1} µm²/gate + {:.1} µm²/flop",
        model.um2_fixed, model.um2_per_gate, model.um2_per_flop
    );
    println!("\n{:<22} {:>10} {:>10}", "module", "actual", "model");
    for r in rows {
        println!(
            "{:<22} {:>10} {:>10.0}",
            r.name,
            r.area_um2,
            model.estimate(r.gates, r.flip_flops)
        );
    }
    println!(
        "\nMBus total {} µm² vs SPI {} µm² / I2C {} µm²: \"a modest increase in area\" \
         buying power-awareness, broadcast, and interrupts.",
        MBUS_TOTAL.area_um2, OTHER_BUSES[0].area_um2, OTHER_BUSES[1].area_um2
    );
}
