//! Fig. 14: saturating transaction rate vs. payload length at the
//! paper's four clock rates, cross-validated by running the engine.

use mbus_bench::multi_series_table;
use mbus_sim::SimTime;
use mbus_systems::many_node::{fig14_series, measured_saturating_rate};

fn main() {
    println!("=== Fig. 14: Saturating Transaction Rate ===\n");
    let payloads: Vec<usize> = (0..=40).step_by(4).collect();
    let grid = fig14_series(&payloads);
    let names: Vec<String> = grid
        .iter()
        .map(|(hz, _)| format!("{:.1}kHz", *hz as f64 / 1e3))
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rows: Vec<(f64, Vec<f64>)> = payloads
        .iter()
        .enumerate()
        .map(|(i, &n)| (n as f64, grid.iter().map(|(_, r)| r[i]).collect()))
        .collect();
    print!(
        "{}",
        multi_series_table(
            "transactions/second vs payload (bytes)",
            "bytes",
            &name_refs,
            &rows
        )
    );

    println!("\nengine validation (run flat-out for 0.5 s of bus time at 400 kHz):");
    for n in [0usize, 8, 40] {
        let measured = measured_saturating_rate(n, 400_000, SimTime::from_ms(500));
        let formula = 400_000.0 / (19.0 + 8.0 * n as f64);
        println!("  {n:>2} B: measured {measured:>9.1} txn/s, closed form {formula:>9.1} txn/s");
    }
}
