//! Parallel parameter sweeps over the engines: the Fig. 9 / Fig. 14
//! grids executed point-by-point with real engine runs, sharded across
//! threads by [`SweepRunner`] — and verified bit-identical to the
//! serial run, which is the determinism contract the sweep layer
//! guarantees.
//!
//! Usage: `cargo run --release -p mbus-bench --bin sweep`

use std::time::Instant;

use mbus_bench::multi_series_table;
use mbus_core::{
    config, Address, AnalyticBus, BusConfig, EngineKind, FuId, FullPrefix, Message, NodeSpec,
    ShortPrefix, SweepRunner, Workload,
};
use mbus_sim::SimTime;

/// One Fig. 14-style point: saturating transaction rate measured by
/// actually running back-to-back messages on a fresh engine.
fn measured_rate(clock_hz: u64, payload: usize) -> f64 {
    let config = BusConfig::new(clock_hz)
        .expect("valid clock")
        .with_mediator_wakeup_cycles(0);
    let mut bus = AnalyticBus::new(config);
    for i in 0..2u32 {
        bus.add_node(
            NodeSpec::new(format!("n{i}"), FullPrefix::new(0x100 + i).expect("prefix"))
                .with_short_prefix(ShortPrefix::new((i + 1) as u8).expect("prefix")),
        );
    }
    let dest = Address::short(ShortPrefix::new(0x2).expect("prefix"), FuId::ZERO);
    let duration = SimTime::from_ms(250);
    let mut transactions = 0u64;
    // Queue blocks of back-to-back messages and drain them through the
    // batched kernel: identical transaction stream (every message is
    // one fixed-cost transaction), a fraction of the setup overhead.
    while bus.now() < duration {
        for _ in 0..32 {
            bus.queue(0, Message::new(dest, vec![0xA5; payload]))
                .expect("payload fits");
        }
        bus.run_until_quiescent_with(|_r| transactions += 1);
        bus.take_rx(1);
    }
    transactions as f64 / bus.now().as_secs_f64()
}

fn main() {
    println!("=== Engine-backed parameter sweeps, serial vs sharded ===\n");

    // Fig. 14 grid: 4 clock rates x 11 payload lengths = 44 engine runs.
    let clocks = [100_000u64, 400_000, 1_000_000, 7_100_000];
    let payloads: Vec<usize> = (0..=40).step_by(4).collect();
    let points: Vec<(u64, usize)> = clocks
        .iter()
        .flat_map(|&hz| payloads.iter().map(move |&n| (hz, n)))
        .collect();
    let f = |&(hz, n): &(u64, usize)| measured_rate(hz, n);

    let start = Instant::now();
    let serial = SweepRunner::serial().run(&points, f);
    let serial_wall = start.elapsed();

    // At least 4 workers even on small machines, so the sharded path
    // (chunking, scoped threads, re-concatenation) genuinely runs.
    let runner = SweepRunner::with_threads(SweepRunner::auto().threads().max(4));
    let start = Instant::now();
    let sharded = runner.run(&points, f);
    let sharded_wall = start.elapsed();

    assert_eq!(serial, sharded, "sharded sweep diverged from serial");
    println!(
        "fig14 grid: {} engine-backed points; serial {:.2?}, {} threads {:.2?} ({:.1}x), outputs identical: {}",
        points.len(),
        serial_wall,
        runner.threads(),
        sharded_wall,
        serial_wall.as_secs_f64() / sharded_wall.as_secs_f64().max(1e-9),
        serial == sharded,
    );

    let names: Vec<String> = clocks
        .iter()
        .map(|&hz| format!("{:.1}kHz", hz as f64 / 1e3))
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rows: Vec<(f64, Vec<f64>)> = payloads
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            (
                n as f64,
                (0..clocks.len())
                    .map(|c| sharded[c * payloads.len() + i])
                    .collect(),
            )
        })
        .collect();
    print!(
        "\n{}",
        multi_series_table(
            "measured transactions/second vs payload (bytes)",
            "bytes",
            &name_refs,
            &rows
        )
    );

    // Fig. 9: the propagation-limited frequency ceiling (closed form,
    // but swept through the same runner for shape consistency).
    let populations: Vec<usize> = (2..=14).collect();
    let ceilings = runner.run(&populations, |&n| {
        config::max_clock_hz(n, SimTime::from_ns(10)) as f64 / 1e6
    });
    println!("\nfig09 ceilings (MHz): {ceilings:.1?}");
    println!("paper anchors: 2 nodes -> 50 MHz; 14 nodes -> 7.1 MHz\n");

    // Cross-engine storm sweep: each worker runs BOTH engines on its
    // point and verifies the signatures agree — the cross-check itself,
    // sharded.
    let storm_points: Vec<usize> = (2..=8).collect();
    let all_agree = runner
        .run(&storm_points, |&n| {
            let w = Workload::many_node_storm(n, 2);
            w.run_on(EngineKind::Analytic).signature() == w.run_on(EngineKind::Wire).signature()
        })
        .into_iter()
        .all(|ok| ok);
    println!("sharded cross-engine storm sweep (2..=8 nodes): all signatures agree: {all_agree}");
    assert!(all_agree);
}
