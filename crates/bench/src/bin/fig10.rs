//! Fig. 10: bus overhead in bits vs. message length for UART (1/2-stop),
//! I2C, SPI, and MBus (short/full addressing).

use mbus_baselines::overhead::{
    crossover_bytes, fig10_series, I2cOverhead, MbusOverhead, UartOverhead,
};
use mbus_bench::multi_series_table;

fn main() {
    println!("=== Fig. 10: Bus Overhead vs. Message Length ===\n");
    let series = fig10_series();
    let names: Vec<&str> = series.iter().map(|s| s.name()).collect();
    let rows: Vec<(f64, Vec<f64>)> = (0..=40usize)
        .step_by(2)
        .map(|n| {
            (
                n as f64,
                series.iter().map(|s| s.overhead_bits(n) as f64).collect(),
            )
        })
        .collect();
    print!(
        "{}",
        multi_series_table(
            "overhead bits by payload length (bytes)",
            "bytes",
            &names,
            &rows
        )
    );

    let mbus = MbusOverhead {
        full_address: false,
    };
    println!("\ncrossovers (first payload where MBus short strictly wins):");
    println!(
        "  vs UART 2-stop: {:?} bytes   (paper: \"after 7 bytes\")",
        crossover_bytes(&mbus, &UartOverhead { stop_bits: 2 }, 100)
    );
    println!(
        "  vs UART 1-stop: {:?} bytes   (paper: \"after 9 bytes\")",
        crossover_bytes(&mbus, &UartOverhead { stop_bits: 1 }, 100)
    );
    println!(
        "  vs I2C:         {:?} bytes   (paper: \"after 9 bytes\")",
        crossover_bytes(&mbus, &I2cOverhead, 100)
    );
    println!("\nMBus overhead is message-length independent: 19 bits even for a 28.8 kB image.");
}
