//! Fig. 11: energy comparisons — (a) total bus power vs. clock
//! frequency; (b) energy per goodput bit vs. payload length — for
//! standard I2C, Oracle I2C, and simulated/measured MBus at 2 and 14
//! nodes.

use mbus_bench::multi_series_table;
use mbus_power::i2c_model::{OracleI2c, StandardI2c};
use mbus_power::mbus_model::{energy_per_goodput_bit, total_power, Calibration};

fn main() {
    println!("=== Fig. 11(a): Total Bus Power Draw vs. Clock Frequency ===\n");
    let names = [
        "StdI2C@50pF",
        "Oracle14",
        "MBusMeas14",
        "Oracle2",
        "MBusMeas2",
        "MBusSim14",
        "MBusSim2",
    ];
    let std_i2c = StandardI2c::at_50pf();
    let oracle14 = OracleI2c::for_chips(14);
    let oracle2 = OracleI2c::for_chips(2);
    let rows: Vec<(f64, Vec<f64>)> = (1..=8)
        .map(|m| {
            let f = m as f64 * 1e6;
            (
                f / 1e6,
                vec![
                    std_i2c.total_power(f).as_uw(),
                    oracle14.total_power(f).as_uw(),
                    total_power(14, f, Calibration::Measured).as_uw(),
                    oracle2.total_power(f).as_uw(),
                    total_power(2, f, Calibration::Measured).as_uw(),
                    total_power(14, f, Calibration::Simulated).as_uw(),
                    total_power(2, f, Calibration::Simulated).as_uw(),
                ],
            )
        })
        .collect();
    print!(
        "{}",
        multi_series_table("total power (µW) vs clock (MHz)", "MHz", &names, &rows)
    );
    println!(
        "\n(standard fast-mode I2C is only *feasible* to {:.2} MHz; beyond that its 300 ns rise no longer fits)",
        std_i2c.max_feasible_hz() / 1e6
    );

    println!("\n=== Fig. 11(b): Energy per Goodput Bit vs. Payload Length ===\n");
    let rows: Vec<(f64, Vec<f64>)> = (1..=12usize)
        .map(|n| {
            (
                n as f64,
                vec![
                    oracle14.energy_per_goodput_bit(n).as_pj(),
                    energy_per_goodput_bit(n, 14, Calibration::Measured).as_pj(),
                    oracle2.energy_per_goodput_bit(n).as_pj(),
                    energy_per_goodput_bit(n, 2, Calibration::Measured).as_pj(),
                    energy_per_goodput_bit(n, 14, Calibration::Simulated).as_pj(),
                    energy_per_goodput_bit(n, 2, Calibration::Simulated).as_pj(),
                ],
            )
        })
        .collect();
    let names_b = [
        "Oracle14",
        "MBusMeas14",
        "Oracle2",
        "MBusMeas2",
        "MBusSim14",
        "MBusSim2",
    ];
    print!(
        "{}",
        multi_series_table(
            "energy per goodput bit (pJ) vs payload (bytes)",
            "bytes",
            &names_b,
            &rows
        )
    );

    println!("\npaper-text checks:");
    println!(
        "  simulated MBus < Oracle I2C for all payload lengths: {}",
        {
            (1..=12).all(|n| {
                energy_per_goodput_bit(n, 14, Calibration::Simulated).as_pj()
                    < oracle14.energy_per_goodput_bit(n).as_pj()
            })
        }
    );
    println!(
        "  measured MBus suffers for 1-2 byte messages (coalesce!): 1B costs {:.0} pJ/bit vs {:.0} pJ/bit at 12B",
        energy_per_goodput_bit(1, 14, Calibration::Measured).as_pj(),
        energy_per_goodput_bit(12, 14, Calibration::Measured).as_pj()
    );
}
