//! Ablation studies for the design choices DESIGN.md calls out:
//! end-of-message mechanisms, the priority round, and message
//! coalescing.

use mbus_core::{
    timing, Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix,
};
use mbus_power::mbus_model::{energy_per_goodput_bit, Calibration};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn main() {
    println!("=== Ablation 1: end-of-message mechanism ===\n");
    println!("overhead bits charged per n-byte message under three designs:");
    println!(
        "{:>8} {:>22} {:>22} {:>22}",
        "bytes", "interjection (MBus)", "16-bit length header", "per-byte ACK (I2C)"
    );
    for n in [1usize, 4, 8, 16, 64, 256, 1024, 28_800] {
        // Interjection: fixed 19. Length header: arb(3)+addr(8)+16-bit
        // header+control-ish(3) but no interjection needed -> 3+8+16+3.
        // Per-byte ACK: 10 + n (I2C framing).
        let interjection = timing::SHORT_OVERHEAD_CYCLES;
        let header = 3 + 8 + 16 + 3;
        let per_byte = 10 + n as u32;
        println!("{n:>8} {interjection:>22} {header:>22} {per_byte:>22}");
    }
    println!("\nthe length header beats interjection by 11 bits for a *known-length* message,");
    println!("but cannot end a message early (receiver error), cannot rescue a hung bus,");
    println!(
        "and caps message length at its field width — the paper's in-band reset argument (§4.9)."
    );

    println!("\n=== Ablation 2: priority round latency ===\n");
    // A far node (index 5) with an urgent message contends against a
    // stream from near node 1. Measure queue delay with and without
    // the priority flag.
    for priority in [false, true] {
        let mut bus = AnalyticBus::new(BusConfig::default());
        for i in 0..6 {
            bus.add_node(
                NodeSpec::new(format!("n{i}"), FullPrefix::new(0x800 + i).unwrap())
                    .with_short_prefix(sp((i + 1) as u8)),
            );
        }
        // Near node floods; far node has one urgent message.
        for k in 0..8u8 {
            bus.queue(
                1,
                Message::new(Address::short(sp(0x1), FuId::ZERO), vec![k; 32]),
            )
            .unwrap();
        }
        let urgent = Message::new(Address::short(sp(0x1), FuId::ZERO), vec![0xEE]);
        let urgent = if priority {
            urgent.with_priority()
        } else {
            urgent
        };
        bus.queue(5, urgent).unwrap();
        let records = bus.run_until_quiescent();
        let position = records
            .iter()
            .position(|r| r.winner == Some(5))
            .expect("urgent message sent");
        let wait_cycles: u64 = records[..position].iter().map(|r| r.cycles).sum();
        println!(
            "  priority={priority:<5}: urgent message was transaction #{}, waited {} bus cycles",
            position + 1,
            wait_cycles
        );
    }
    println!("\nwithout the priority round a topologically-last node waits out the whole flood.");

    println!("\n=== Ablation 3: message coalescing (Fig. 11b's advice) ===\n");
    println!("energy per goodput bit, 3-chip system, measured calibration:");
    for n in [1usize, 2, 4, 8, 16, 64] {
        let e = energy_per_goodput_bit(n, 3, Calibration::Measured);
        println!("  {n:>3}-byte messages: {:>8.1} pJ/bit", e.as_pj());
    }
    println!("\ncoalescing 1-byte updates into 8-byte batches cuts energy/bit by ~2.4x;");
    println!("\"systems should attempt to coalesce messages if possible\" (§6.2).");
}
