//! Table 1: the feature comparison matrix.

use mbus_baselines::features::{meets_critical_requirements, render_table1, table1};

fn main() {
    println!("=== Table 1: Feature Comparison Matrix ===\n");
    print!("{}", render_table1());
    println!();
    for bus in table1() {
        println!(
            "  {:<8} meets all critical §3 requirements: {}",
            bus.name,
            if meets_critical_requirements(&bus) {
                "YES"
            } else {
                "no"
            }
        );
    }
    println!("\npaper: \"Only MBus satisfies all of our required features.\"");
}
