//! Trace-driven scenario replay: run any `.mbt` trace file against
//! every engine kind × fleet schedule and emit a machine-readable
//! report — the CLI face of `mbus_core::trace`.
//!
//! Three subcommands:
//!
//! * `replay <file.mbt>... [--shards 2,4] [--out <path>]` — parse each
//!   trace, replay it across all comparable engine kinds (fleet traces
//!   also sweep batched / interleaved / sharded schedules), verify
//!   every cell produces the identical signature digest and that any
//!   `expect sig=` pin matches, and write a JSON report
//!   (`BENCH_scenario.json` by default; CI uploads it as an artifact).
//!   Exits nonzero if any trace disagrees, fails its pin, or fails to
//!   parse.
//! * `export <builtin> [--pin] [--out <path>]` — serialize a built-in
//!   workload (`storm`, `sense-aggregate`, `hostile`, `partial-drain`,
//!   `gateway-forwarding`, the closed-loop 1024-bus mesh shapes
//!   `duty-cycle-day` / `alarm-cascade` / `aggregate-fanin`,
//!   `seeded:<n>`, `fleet-seeded:<n>`) as a `.mbt` file; `--pin`
//!   replays it first and embeds the agreed digest as an `expect
//!   sig=` header. This is how `tests/corpus/` was generated.
//! * `fuzz [--seeds <n>] [--start <n>] [--out-dir <dir>]` — walk
//!   generator seeds (single-bus and fleet), cross-check every
//!   comparable engine kind's digest, and on divergence shrink the
//!   workload with `mbus_core::trace::shrink` and write both the full
//!   and the minimized `.mbt` repro. Exits nonzero on any divergence
//!   (the weekly-fuzz CI job uploads the minimized traces).
//!
//! Usage: `cargo run --release -p mbus-bench --bin scenario -- <subcommand> ...`

use std::process::ExitCode;

use mbus_bench::harness::smoke_mode;
use mbus_bench::json::Json;
use mbus_bench::scenario::{builtin, replay_trace, BUILTINS};
use mbus_core::engine::BusEngine;
use mbus_core::trace::{fleet_digest, scenario_digest, TraceFile};
use mbus_core::wire::WireEngine;
use mbus_core::{
    shrink_fleet, shrink_workload, EngineKind, FleetSchedule, FleetWorkload, Workload,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: scenario replay <file.mbt>... [--shards n,m] [--out <path>]\n\
         \x20      scenario export <builtin> [--pin] [--out <path>]\n\
         \x20      scenario fuzz [--seeds <n>] [--start <n>] [--out-dir <dir>]\n\
         builtins: {} seeded:<n> fleet-seeded:<n>",
        BUILTINS.join(" ")
    );
    ExitCode::from(2)
}

/// Pulls the value following `flag` out of `args`, removing both.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        return None;
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn cmd_replay(mut args: Vec<String>) -> ExitCode {
    let out = take_flag(&mut args, "--out").unwrap_or_else(|| "BENCH_scenario.json".to_string());
    let shards: Vec<usize> = take_flag(&mut args, "--shards")
        .map(|s| s.split(',').filter_map(|n| n.parse().ok()).collect())
        .unwrap_or_else(|| vec![2]);
    if args.is_empty() {
        return usage();
    }
    let mut traces = Vec::new();
    let mut all_ok = true;
    for path in &args {
        let tf = match TraceFile::parse_file(path) {
            Ok(tf) => tf,
            Err(err) => {
                eprintln!("error: {err}");
                all_ok = false;
                traces.push(Json::obj([
                    ("trace", path.as_str().into()),
                    ("error", err.to_string().into()),
                    ("ok", false.into()),
                ]));
                continue;
            }
        };
        let result = replay_trace(path, &tf, &shards);
        println!(
            "[{}] {} '{}' sig={:016x} {}",
            if result.ok { "ok" } else { "FAIL" },
            if tf.trace.is_fleet() {
                "fleet"
            } else {
                "workload"
            },
            tf.trace.name(),
            result.digest,
            if tf.trace.wire_comparable() {
                "(all engines)"
            } else {
                "(analytic = event; partial drains)"
            },
        );
        all_ok &= result.ok;
        traces.push(result.json);
    }
    let artifact = Json::obj([
        ("bench", "scenario".into()),
        ("shards", Json::arr(shards.iter().copied())),
        ("ok", all_ok.into()),
        ("traces", Json::Arr(traces)),
    ]);
    if let Err(err) = std::fs::write(&out, format!("{artifact}\n")) {
        eprintln!("error: cannot write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_export(mut args: Vec<String>) -> ExitCode {
    let out = take_flag(&mut args, "--out");
    let pin = if let Some(i) = args.iter().position(|a| a == "--pin") {
        args.remove(i);
        true
    } else {
        false
    };
    let [name] = args.as_slice() else {
        return usage();
    };
    let Some(mut tf) = builtin(name) else {
        eprintln!("error: unknown builtin `{name}`");
        return usage();
    };
    if pin {
        let result = replay_trace(name, &tf, &[2]);
        if !result.ok {
            eprintln!("error: `{name}` does not replay cleanly; refusing to pin");
            return ExitCode::FAILURE;
        }
        tf = tf.with_expect_sig(result.digest);
    }
    let path = out.unwrap_or_else(|| format!("{}.mbt", name.replace([':', '/'], "-")));
    if let Err(err) = std::fs::write(&path, tf.to_mbt()) {
        eprintln!("error: cannot write {path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}

/// Digests of one single-bus workload on every comparable engine kind.
/// Wire-comparable workloads contribute *two* wire digests: the
/// wavefront fast path (the `EngineKind::Wire` default) and the
/// edge-at-a-time oracle, so the fuzz walk cross-checks the fast path
/// against the old propagation loop on every seed.
fn workload_digests(w: &Workload) -> Vec<u64> {
    let mut digests: Vec<u64> = EngineKind::ALL
        .iter()
        .filter(|&&kind| w.wire_comparable() || kind != EngineKind::Wire)
        .map(|&kind| scenario_digest(&w.run_on(kind).signature()))
        .collect();
    if w.wire_comparable() {
        let mut oracle = WireEngine::new(*w.config()).with_wavefront(false);
        for spec in w.node_specs() {
            oracle.add_node(spec.clone());
        }
        digests.push(scenario_digest(&w.apply(&mut oracle).signature()));
    }
    digests
}

/// Digests of one fleet workload on every comparable engine kind ×
/// schedule.
fn fleet_digests(w: &FleetWorkload) -> Vec<u64> {
    let schedules = [
        FleetSchedule::Batched,
        FleetSchedule::Interleaved,
        FleetSchedule::Sharded { shards: 2 },
    ];
    EngineKind::ALL
        .iter()
        .filter(|&&kind| w.wire_comparable() || kind != EngineKind::Wire)
        .flat_map(|&kind| {
            schedules
                .iter()
                .map(move |&s| fleet_digest(&w.run_scheduled_on(kind, s).signature()))
        })
        .collect()
}

fn all_equal(digests: &[u64]) -> bool {
    digests.windows(2).all(|pair| pair[0] == pair[1])
}

/// Writes the full and shrunk `.mbt` repros for a diverging seed and
/// reports their paths.
fn write_repro(dir: &str, stem: &str, seed: u64, full: &TraceFile, min: &TraceFile) {
    for (suffix, tf) in [("full", full), ("min", min)] {
        let path = format!("{dir}/FUZZ_{stem}_{seed}.{suffix}.mbt");
        match std::fs::write(&path, tf.to_mbt()) {
            Ok(()) => println!("  wrote {path}"),
            Err(err) => eprintln!("  error: cannot write {path}: {err}"),
        }
    }
}

fn cmd_fuzz(mut args: Vec<String>) -> ExitCode {
    let dir = take_flag(&mut args, "--out-dir").unwrap_or_else(|| ".".to_string());
    let start: u64 = take_flag(&mut args, "--start")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let default_seeds = if smoke_mode() { 10 } else { 100 };
    let seeds: u64 = take_flag(&mut args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_seeds);
    if !args.is_empty() {
        return usage();
    }
    println!("scenario fuzz: seeds {start}..{} into {dir}", start + seeds);
    let mut failures = 0u64;
    for seed in start..start + seeds {
        let w = Workload::seeded(seed);
        if !all_equal(&workload_digests(&w)) {
            failures += 1;
            println!("[FAIL] seed {seed}: engines disagree on '{}'", w.name());
            let min = shrink_workload(&w, &mut |c| !all_equal(&workload_digests(c)));
            write_repro(
                &dir,
                "workload",
                seed,
                &TraceFile::workload(w).with_seed(seed),
                &TraceFile::workload(min).with_seed(seed),
            );
        }
        let f = FleetWorkload::seeded(seed);
        if !all_equal(&fleet_digests(&f)) {
            failures += 1;
            println!(
                "[FAIL] seed {seed}: engines/schedules disagree on '{}'",
                f.name()
            );
            let min = shrink_fleet(&f, &mut |c| !all_equal(&fleet_digests(c)));
            write_repro(
                &dir,
                "fleet",
                seed,
                &TraceFile::fleet(f).with_seed(seed),
                &TraceFile::fleet(min).with_seed(seed),
            );
        }
    }
    if failures == 0 {
        println!("all {seeds} seeds agree across engines and schedules");
        ExitCode::SUCCESS
    } else {
        println!("{failures} diverging seed(s); minimized repros written to {dir}");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--smoke` is a harness-wide flag; strip it so subcommand
    // parsing doesn't trip over it (smoke_mode() already saw it).
    args.retain(|a| a != "--smoke");
    match args.first().map(String::as_str) {
        Some("replay") => cmd_replay(args.split_off(1)),
        Some("export") => cmd_export(args.split_off(1)),
        Some("fuzz") => cmd_fuzz(args.split_off(1)),
        _ => usage(),
    }
}
