//! # mbus-bench — table and figure regenerators
//!
//! One binary per table/figure of the paper's evaluation (§6), printing
//! the same rows/series the paper reports:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | feature comparison matrix |
//! | `table2` | synthesized module sizes |
//! | `table3` | measured pJ/bit by role |
//! | `fig02` | I2C-variant waveforms |
//! | `fig03` | transaction state walk |
//! | `fig05` | arbitration + priority waveform |
//! | `fig06` | wakeup / null-transaction waveform |
//! | `fig07` | interjection + control waveform |
//! | `fig09` | max bus clock vs. node count |
//! | `fig10` | overhead bits vs. message length |
//! | `fig11` | power and energy-per-goodput-bit comparisons |
//! | `fig14` | saturating transaction rate |
//! | `fig15` | parallel-MBus goodput |
//! | `sense_and_send` | §6.3.1 numbers, engine-generic (both engines) |
//! | `monitor_alert` | §6.3.2 numbers, engine-generic (both engines) |
//! | `storm` | many-node contention storms on both engines |
//! | `sweep` | parallel engine-backed sweeps, serial-vs-sharded verified |
//! | `fleet` | gateway-bridged 100+-node fleets, cross-checked on both engines |
//! | `bitbang` | §6.6 numbers |
//! | `ablations` | DESIGN.md's design-choice studies |
//!
//! Run any of them with `cargo run -p mbus-bench --bin <name>`.
//! The workload binaries are written once against
//! [`mbus_core::engine::BusEngine`] and executed on both protocol
//! engines, cross-checking the record streams as they go.
//! The micro-benches (`cargo bench -p mbus-bench`, using the
//! dependency-free [`harness`]) measure the throughput of the two
//! protocol engines and the event kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use mbus_core::{
    Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix,
};

pub mod harness;
pub mod json;
pub mod scenario;

/// Builds the 14-node analytic ring both the `storm` bin and the
/// `engines` bench drive for the batched-drain point, so the README
/// number and the bin measure the same configuration.
pub fn storm_ring() -> AnalyticBus {
    let mut bus = AnalyticBus::new(BusConfig::default());
    for i in 0..14u32 {
        bus.add_node(
            NodeSpec::new(format!("n{i}"), FullPrefix::new(0x500 + i).expect("prefix"))
                .with_short_prefix(ShortPrefix::new((i + 1) as u8).expect("prefix")),
        );
    }
    bus
}

/// Queues one storm round on a [`storm_ring`] bus: members 1..=13 each
/// send a 3-byte message to the mediator node.
pub fn queue_storm_round(bus: &mut AnalyticBus, round: usize) {
    let dest = Address::short(ShortPrefix::new(0x1).expect("prefix"), FuId::ZERO);
    for i in 1..14usize {
        bus.queue(i, Message::new(dest, vec![round as u8, i as u8, 0]))
            .expect("storm queue");
    }
}

/// Formats a numeric series as an aligned two-column table.
pub fn two_col_table(title: &str, x_label: &str, y_label: &str, rows: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{x_label:>12}  {y_label:>16}");
    for (x, y) in rows {
        let _ = writeln!(out, "{x:>12.3}  {y:>16.3}");
    }
    out
}

/// Formats a multi-series table: one x column plus one column per
/// series.
pub fn multi_series_table(
    title: &str,
    x_label: &str,
    series_names: &[&str],
    rows: &[(f64, Vec<f64>)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{x_label:>10}");
    for name in series_names {
        let _ = write!(header, "  {name:>18}");
    }
    let _ = writeln!(out, "{header}");
    for (x, ys) in rows {
        let mut line = format!("{x:>10.2}");
        for y in ys {
            let _ = write!(line, "  {y:>18.3}");
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_col_renders_rows() {
        let t = two_col_table("T", "x", "y", &[(1.0, 2.0), (3.0, 4.5)]);
        assert!(t.contains("T"));
        assert!(t.contains("4.500"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn multi_series_renders_all_columns() {
        let t = multi_series_table(
            "M",
            "n",
            &["a", "b"],
            &[(1.0, vec![2.0, 3.0]), (2.0, vec![4.0, 5.0])],
        );
        assert!(t.contains("a"));
        assert!(t.contains("5.000"));
    }
}
