//! Micro-benches over the discrete-event kernel itself: event
//! scheduling throughput, waveform/trace handling, and the wire
//! engine's wavefront fast path against its edge-at-a-time oracle.
//!
//! Run with `cargo bench -p mbus-bench --bench kernel`; CI runs it
//! with `-- --smoke`. Every row lands in `BENCH_kernel.json` (uploaded
//! as a CI artifact), and the wire rows feed a regression gate: if the
//! measured wavefront-vs-oracle speedup falls more than 20% below the
//! recorded baseline, the bench exits nonzero and fails the smoke
//! step. The gate compares a *ratio of two rows measured back to back
//! in one process*, so it holds across machines — absolute times are
//! reported but never gated.

use mbus_bench::harness::{bench_timed, bench_timed_exact, smoke_mode};
use mbus_bench::json::Json;
use mbus_core::engine::BusEngine;
use mbus_core::wire::WireEngine;
use mbus_core::Workload;
use mbus_sim::{Circuit, Component, Ctx, Logic, PinId, SimTime};

/// Recorded baseline speedup of the wavefront path over the oracle on
/// the wire rows below (min across rows, measured at introduction:
/// storm6 ≈ 2.3×, ring14 ≈ 2.1–2.4× on the reference container; the
/// pure-propagation `kernel_pipeline` chain shape, where scheduling
/// overhead dominates member logic, shows ≈ 3.9×). The gate fires when
/// a run measures less than 80% of this — i.e. a >20% regression of
/// the fast path relative to the unchanged oracle.
const BASELINE_WIRE_SPEEDUP: f64 = 2.2;

/// A repeater chain exercises the drive→deliver→drive pipeline.
struct Repeater {
    output: PinId,
}

impl Component for Repeater {
    fn on_signal(&mut self, _pin: PinId, value: Logic, ctx: &mut Ctx<'_>) {
        ctx.drive_after(self.output, value, SimTime::from_ns(1));
    }
}

fn chain_circuit(len: usize) -> (Circuit, mbus_sim::NetId) {
    let mut c = Circuit::new();
    let first = c.net("n0");
    let mut prev = first;
    for i in 0..len {
        let next = c.net(format!("n{}", i + 1));
        let comp = c.add_component(format!("rep{i}"));
        let _input = c.input_delayed(comp, prev, SimTime::from_ns(10));
        let output = c.output(comp, next);
        c.bind(comp, Repeater { output });
        prev = next;
    }
    (c, first)
}

fn bench_event_pipeline(rows: &mut Vec<(String, f64)>) {
    for len in [10usize, 100] {
        let name = format!("kernel_pipeline/chain/{len}");
        let median = bench_timed(&name, 50, 5, || {
            let (mut circuit, first) = chain_circuit(len);
            for k in 0..100u64 {
                circuit.drive_external(
                    first,
                    if k % 2 == 0 { Logic::Low } else { Logic::High },
                    SimTime::from_us(k),
                );
            }
            circuit.run_to_idle(1_000_000);
            std::hint::black_box(circuit.events_processed());
        });
        rows.push((name, median));
    }
}

fn bench_scheduler(rows: &mut Vec<(String, f64)>) {
    use mbus_sim::{EventKind, Scheduler};
    let median = bench_timed("scheduler_push_pop_10k", 50, 5, || {
        let mut q = Scheduler::new();
        for i in 0..10_000u64 {
            q.schedule(
                SimTime::from_ps(i * 37 % 5_000),
                EventKind::Timer {
                    component: Default::default(),
                    token: i,
                },
            );
        }
        let mut count = 0u64;
        while q.pop().is_some() {
            count += 1;
        }
        std::hint::black_box(count);
    });
    rows.push(("scheduler_push_pop_10k".into(), median));
}

fn bench_trace_queries(rows: &mut Vec<(String, f64)>) {
    let (mut circuit, first) = chain_circuit(20);
    for k in 0..1_000u64 {
        circuit.drive_external(
            first,
            if k % 2 == 0 { Logic::Low } else { Logic::High },
            SimTime::from_us(k),
        );
    }
    circuit.run_to_idle(10_000_000);
    let trace = circuit.trace().clone();
    let nets: Vec<_> = trace.nets().collect();
    let median = bench_timed("trace_value_at_lookups", 20, 5, || {
        let mut acc = 0usize;
        for &net in &nets {
            for t in (0..1_000u64).step_by(97) {
                acc += trace.value_at(net, SimTime::from_us(t)).is_high() as usize;
            }
        }
        std::hint::black_box(acc);
    });
    rows.push(("trace_value_at_lookups".into(), median));
}

/// One full wire-level workload run with the chosen propagation path.
fn run_wire_workload(w: &Workload, wavefront: bool) {
    let mut engine = WireEngine::new(*w.config()).with_wavefront(wavefront);
    for spec in w.node_specs() {
        engine.add_node(spec.clone());
    }
    let report = w.apply(&mut engine);
    std::hint::black_box(report.records.len());
}

/// Wavefront vs oracle over representative ring shapes; returns the
/// measured speedups. These rows bypass the smoke clamp (a 2×1 sample
/// is too noisy to gate on) and pick reduced counts of their own.
fn bench_wire(rows: &mut Vec<(String, f64)>) -> Vec<(String, f64)> {
    let (iters, batches) = if smoke_mode() { (3, 3) } else { (10, 5) };
    let mut speedups = Vec::new();
    for (label, w) in [
        ("storm6", Workload::many_node_storm(6, 3)),
        ("ring14", Workload::many_node_storm(14, 2)),
    ] {
        let fast_name = format!("wire_kernel/{label}/wavefront");
        let fast = bench_timed_exact(&fast_name, iters, batches, || run_wire_workload(&w, true));
        rows.push((fast_name, fast));
        let oracle_name = format!("wire_kernel/{label}/oracle");
        let oracle = bench_timed_exact(&oracle_name, iters, batches, || {
            run_wire_workload(&w, false)
        });
        rows.push((oracle_name, oracle));
        let speedup = oracle / fast;
        println!("wire_kernel/{label}: wavefront speedup {speedup:.2}x");
        speedups.push((label.to_string(), speedup));
    }
    speedups
}

fn main() {
    let mut rows: Vec<(String, f64)> = Vec::new();
    bench_event_pipeline(&mut rows);
    bench_scheduler(&mut rows);
    bench_trace_queries(&mut rows);
    let speedups = bench_wire(&mut rows);

    let min_speedup = speedups
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    let gate = BASELINE_WIRE_SPEEDUP * 0.8;
    let pass = min_speedup >= gate;

    let artifact = Json::obj([
        ("bench", "kernel".into()),
        ("smoke", smoke_mode().into()),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|(name, median)| {
                        Json::obj([
                            ("name", name.clone().into()),
                            ("median_s", (*median).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "wire_speedups",
            Json::Arr(
                speedups
                    .iter()
                    .map(|(label, s)| {
                        Json::obj([("shape", label.clone().into()), ("speedup", (*s).into())])
                    })
                    .collect(),
            ),
        ),
        ("baseline_speedup", BASELINE_WIRE_SPEEDUP.into()),
        ("gate", gate.into()),
        ("gate_pass", pass.into()),
    ]);
    std::fs::write("BENCH_kernel.json", format!("{artifact}\n")).expect("write BENCH_kernel.json");
    println!("\nwrote BENCH_kernel.json");

    if !pass {
        eprintln!(
            "FAIL: wavefront speedup {min_speedup:.2}x fell below the gate \
             ({gate:.2}x = 80% of the {BASELINE_WIRE_SPEEDUP:.2}x baseline)"
        );
        std::process::exit(1);
    }
}
