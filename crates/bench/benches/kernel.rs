//! Micro-benches over the discrete-event kernel itself: event
//! scheduling throughput and waveform/trace handling.
//!
//! Run with `cargo bench -p mbus-bench --bench kernel`; CI runs it
//! with `-- --smoke` to keep the harness from rotting.

use mbus_bench::harness::bench;
use mbus_sim::{Circuit, Component, Ctx, Logic, PinId, SimTime};

/// A repeater chain exercises the drive→deliver→drive pipeline.
struct Repeater {
    output: PinId,
}

impl Component for Repeater {
    fn on_signal(&mut self, _pin: PinId, value: Logic, ctx: &mut Ctx<'_>) {
        ctx.drive_after(self.output, value, SimTime::from_ns(1));
    }
}

fn chain_circuit(len: usize) -> (Circuit, mbus_sim::NetId) {
    let mut c = Circuit::new();
    let first = c.net("n0");
    let mut prev = first;
    for i in 0..len {
        let next = c.net(format!("n{}", i + 1));
        let comp = c.add_component(format!("rep{i}"));
        let _input = c.input_delayed(comp, prev, SimTime::from_ns(10));
        let output = c.output(comp, next);
        c.bind(comp, Repeater { output });
        prev = next;
    }
    (c, first)
}

fn bench_event_pipeline() {
    for len in [10usize, 100] {
        bench(&format!("kernel_pipeline/chain/{len}"), 50, 5, || {
            let (mut circuit, first) = chain_circuit(len);
            for k in 0..100u64 {
                circuit.drive_external(
                    first,
                    if k % 2 == 0 { Logic::Low } else { Logic::High },
                    SimTime::from_us(k),
                );
            }
            circuit.run_to_idle(1_000_000);
            std::hint::black_box(circuit.events_processed());
        });
    }
}

fn bench_scheduler() {
    use mbus_sim::{EventKind, Scheduler};
    bench("scheduler_push_pop_10k", 50, 5, || {
        let mut q = Scheduler::new();
        for i in 0..10_000u64 {
            q.schedule(
                SimTime::from_ps(i * 37 % 5_000),
                EventKind::Timer {
                    component: Default::default(),
                    token: i,
                },
            );
        }
        let mut count = 0u64;
        while q.pop().is_some() {
            count += 1;
        }
        std::hint::black_box(count);
    });
}

fn bench_trace_queries() {
    let (mut circuit, first) = chain_circuit(20);
    for k in 0..1_000u64 {
        circuit.drive_external(
            first,
            if k % 2 == 0 { Logic::Low } else { Logic::High },
            SimTime::from_us(k),
        );
    }
    circuit.run_to_idle(10_000_000);
    let trace = circuit.trace().clone();
    let nets: Vec<_> = trace.nets().collect();
    bench("trace_value_at_lookups", 20, 5, || {
        let mut acc = 0usize;
        for &net in &nets {
            for t in (0..1_000u64).step_by(97) {
                acc += trace.value_at(net, SimTime::from_us(t)).is_high() as usize;
            }
        }
        std::hint::black_box(acc);
    });
}

fn main() {
    bench_event_pipeline();
    bench_scheduler();
    bench_trace_queries();
}
