//! Criterion benches over the two protocol engines: how fast can the
//! reproduction itself execute MBus traffic? These quantify the
//! analytic-vs-wire-level speed gap that justifies keeping both
//! engines (DESIGN.md ablation #4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mbus_core::wire::WireBusBuilder;
use mbus_core::{Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn analytic_bus(n: usize) -> AnalyticBus {
    let mut bus = AnalyticBus::new(BusConfig::default());
    for i in 0..n {
        bus.add_node(
            NodeSpec::new(format!("n{i}"), FullPrefix::new(0x900 + i as u32).unwrap())
                .with_short_prefix(sp((i + 1) as u8)),
        );
    }
    bus
}

fn bench_analytic_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_engine");
    for payload in [8usize, 64, 1024] {
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(
            BenchmarkId::new("transaction", payload),
            &payload,
            |b, &payload| {
                let mut bus = analytic_bus(3);
                let dest = Address::short(sp(0x2), FuId::ZERO);
                b.iter(|| {
                    bus.queue(0, Message::new(dest, vec![0xA5; payload])).unwrap();
                    let record = bus.run_transaction().unwrap();
                    bus.take_rx(1);
                    std::hint::black_box(record.cycles)
                });
            },
        );
    }
    group.finish();
}

fn bench_wire_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_engine");
    group.sample_size(20);
    for payload in [8usize, 64] {
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(
            BenchmarkId::new("transaction", payload),
            &payload,
            |b, &payload| {
                b.iter(|| {
                    let mut bus = WireBusBuilder::new(BusConfig::default())
                        .node(
                            NodeSpec::new("a", FullPrefix::new(0x1).unwrap())
                                .with_short_prefix(sp(0x1)),
                        )
                        .node(
                            NodeSpec::new("b", FullPrefix::new(0x2).unwrap())
                                .with_short_prefix(sp(0x2)),
                        )
                        .node(
                            NodeSpec::new("c", FullPrefix::new(0x3).unwrap())
                                .with_short_prefix(sp(0x3)),
                        )
                        .build();
                    let dest = Address::short(sp(0x2), FuId::ZERO);
                    bus.queue(0, Message::new(dest, vec![0xA5; payload])).unwrap();
                    let records = bus.run_until_quiescent(50_000_000);
                    std::hint::black_box(records.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_ring_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_engine_ring_scaling");
    group.sample_size(20);
    for nodes in [2usize, 8, 14] {
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let mut builder = WireBusBuilder::new(BusConfig::default());
                for i in 0..nodes {
                    builder = builder.node(
                        NodeSpec::new(format!("n{i}"), FullPrefix::new(0xA00 + i as u32).unwrap())
                            .with_short_prefix(sp((i + 1) as u8)),
                    );
                }
                let mut bus = builder.build();
                let dest = Address::short(sp(0x1), FuId::ZERO);
                bus.queue(nodes - 1, Message::new(dest, vec![0x42; 8])).unwrap();
                let records = bus.run_until_quiescent(100_000_000);
                std::hint::black_box(records.len())
            });
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    c.bench_function("enumeration_14_nodes", |b| {
        b.iter(|| {
            let mut bus = AnalyticBus::new(BusConfig::default());
            for i in 0..14 {
                bus.add_node(NodeSpec::new(
                    format!("chip{i}"),
                    FullPrefix::new(0xB00 + i).unwrap(),
                ));
            }
            let assignments = mbus_core::enumeration::enumerate(&mut bus, 0).unwrap();
            std::hint::black_box(assignments.len())
        });
    });
}

criterion_group!(
    benches,
    bench_analytic_transactions,
    bench_wire_transactions,
    bench_ring_scaling,
    bench_enumeration
);
criterion_main!(benches);
