//! Micro-benches over the two protocol engines: how fast can the
//! reproduction itself execute MBus traffic? These quantify the
//! analytic-vs-wire-level speed gap that justifies keeping both
//! engines (DESIGN.md ablation #4) and guard the analytic kernel's
//! batched-drain fast path (the 14-node storm points — README records
//! the before/after numbers).
//!
//! Run with `cargo bench -p mbus-bench --bench engines`; CI runs it
//! with `-- --smoke` to keep the harness from rotting.

use mbus_bench::harness::bench;
use mbus_core::wire::WireBusBuilder;
use mbus_core::{
    Address, AnalyticBus, BusConfig, EngineKind, FuId, FullPrefix, Message, NodeSpec, ShortPrefix,
    Workload,
};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn analytic_bus(n: usize) -> AnalyticBus {
    let mut bus = AnalyticBus::new(BusConfig::default());
    for i in 0..n {
        bus.add_node(
            NodeSpec::new(format!("n{i}"), FullPrefix::new(0x900 + i as u32).unwrap())
                .with_short_prefix(sp((i + 1) as u8)),
        );
    }
    bus
}

fn bench_analytic_transactions() {
    for payload in [8usize, 64, 1024] {
        let mut bus = analytic_bus(3);
        let dest = Address::short(sp(0x2), FuId::ZERO);
        bench(
            &format!("analytic_engine/transaction/{payload}B"),
            2_000,
            5,
            || {
                bus.queue(0, Message::new(dest, vec![0xA5; payload]))
                    .unwrap();
                let record = bus.run_transaction().unwrap();
                bus.take_rx(1);
                std::hint::black_box(record.cycles);
            },
        );
    }
}

/// The ISSUE-2 tentpole point: a full 14-node contention storm on the
/// analytic engine, drained through the `BusEngine` trait exactly as
/// the scenario layer does it. This is the number the kernel's
/// incremental contender index and batched drain must keep ≥2× over
/// the pre-batching kernel (see README).
fn bench_analytic_storm() {
    let workload = Workload::many_node_storm(14, 32);
    bench("analytic_engine/storm/14n32r", 100, 5, || {
        let report = workload.run_on(EngineKind::Analytic);
        std::hint::black_box(report.records.len());
    });

    // Steady-state drain on a long-lived engine: queue one storm round,
    // drain it through the *native* batched kernel (the allocation-free
    // path the module docs describe), repeat — no engine construction
    // in the loop. Shares its ring with the `storm` bin via
    // `mbus_bench::storm_ring`.
    let mut bus = mbus_bench::storm_ring();
    let mut round = 0usize;
    bench("analytic_engine/storm_drain/14n", 2_000, 5, || {
        mbus_bench::queue_storm_round(&mut bus, round);
        round += 1;
        let mut transactions = 0usize;
        bus.run_until_quiescent_with(|_r| transactions += 1);
        bus.take_rx(0);
        std::hint::black_box(transactions);
    });
}

fn bench_wire_transactions() {
    for payload in [8usize, 64] {
        bench(
            &format!("wire_engine/transaction/{payload}B"),
            20,
            5,
            || {
                let mut bus = WireBusBuilder::new(BusConfig::default())
                    .node(
                        NodeSpec::new("a", FullPrefix::new(0x1).unwrap())
                            .with_short_prefix(sp(0x1)),
                    )
                    .node(
                        NodeSpec::new("b", FullPrefix::new(0x2).unwrap())
                            .with_short_prefix(sp(0x2)),
                    )
                    .node(
                        NodeSpec::new("c", FullPrefix::new(0x3).unwrap())
                            .with_short_prefix(sp(0x3)),
                    )
                    .build();
                let dest = Address::short(sp(0x2), FuId::ZERO);
                bus.queue(0, Message::new(dest, vec![0xA5; payload]))
                    .unwrap();
                let records = bus.run_until_quiescent(50_000_000);
                std::hint::black_box(records.len());
            },
        );
    }
}

fn bench_ring_scaling() {
    for nodes in [2usize, 8, 14] {
        bench(&format!("wire_engine/ring_scaling/{nodes}n"), 10, 5, || {
            let mut builder = WireBusBuilder::new(BusConfig::default());
            for i in 0..nodes {
                builder = builder.node(
                    NodeSpec::new(format!("n{i}"), FullPrefix::new(0xA00 + i as u32).unwrap())
                        .with_short_prefix(sp((i + 1) as u8)),
                );
            }
            let mut bus = builder.build();
            let dest = Address::short(sp(0x1), FuId::ZERO);
            bus.queue(nodes - 1, Message::new(dest, vec![0x42; 8]))
                .unwrap();
            let records = bus.run_until_quiescent(100_000_000);
            std::hint::black_box(records.len());
        });
    }
}

fn bench_enumeration() {
    bench("enumeration_14_nodes", 200, 5, || {
        let mut bus = AnalyticBus::new(BusConfig::default());
        for i in 0..14 {
            bus.add_node(NodeSpec::new(
                format!("chip{i}"),
                FullPrefix::new(0xB00 + i).unwrap(),
            ));
        }
        let assignments = mbus_core::enumeration::enumerate(&mut bus, 0).unwrap();
        std::hint::black_box(assignments.len());
    });
}

fn main() {
    bench_analytic_transactions();
    bench_analytic_storm();
    bench_wire_transactions();
    bench_ring_scaling();
    bench_enumeration();
}
