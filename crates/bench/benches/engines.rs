//! Micro-benches over the two protocol engines: how fast can the
//! reproduction itself execute MBus traffic? These quantify the
//! analytic-vs-wire-level speed gap that justifies keeping both
//! engines (DESIGN.md ablation #4).
//!
//! Run with `cargo bench -p mbus-bench --bench engines`.

use mbus_bench::harness::bench;
use mbus_core::wire::WireBusBuilder;
use mbus_core::{
    Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix,
};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn analytic_bus(n: usize) -> AnalyticBus {
    let mut bus = AnalyticBus::new(BusConfig::default());
    for i in 0..n {
        bus.add_node(
            NodeSpec::new(format!("n{i}"), FullPrefix::new(0x900 + i as u32).unwrap())
                .with_short_prefix(sp((i + 1) as u8)),
        );
    }
    bus
}

fn bench_analytic_transactions() {
    for payload in [8usize, 64, 1024] {
        let mut bus = analytic_bus(3);
        let dest = Address::short(sp(0x2), FuId::ZERO);
        bench(
            &format!("analytic_engine/transaction/{payload}B"),
            2_000,
            5,
            || {
                bus.queue(0, Message::new(dest, vec![0xA5; payload]))
                    .unwrap();
                let record = bus.run_transaction().unwrap();
                bus.take_rx(1);
                std::hint::black_box(record.cycles);
            },
        );
    }
}

fn bench_wire_transactions() {
    for payload in [8usize, 64] {
        bench(
            &format!("wire_engine/transaction/{payload}B"),
            20,
            5,
            || {
                let mut bus = WireBusBuilder::new(BusConfig::default())
                    .node(
                        NodeSpec::new("a", FullPrefix::new(0x1).unwrap())
                            .with_short_prefix(sp(0x1)),
                    )
                    .node(
                        NodeSpec::new("b", FullPrefix::new(0x2).unwrap())
                            .with_short_prefix(sp(0x2)),
                    )
                    .node(
                        NodeSpec::new("c", FullPrefix::new(0x3).unwrap())
                            .with_short_prefix(sp(0x3)),
                    )
                    .build();
                let dest = Address::short(sp(0x2), FuId::ZERO);
                bus.queue(0, Message::new(dest, vec![0xA5; payload]))
                    .unwrap();
                let records = bus.run_until_quiescent(50_000_000);
                std::hint::black_box(records.len());
            },
        );
    }
}

fn bench_ring_scaling() {
    for nodes in [2usize, 8, 14] {
        bench(&format!("wire_engine/ring_scaling/{nodes}n"), 10, 5, || {
            let mut builder = WireBusBuilder::new(BusConfig::default());
            for i in 0..nodes {
                builder = builder.node(
                    NodeSpec::new(format!("n{i}"), FullPrefix::new(0xA00 + i as u32).unwrap())
                        .with_short_prefix(sp((i + 1) as u8)),
                );
            }
            let mut bus = builder.build();
            let dest = Address::short(sp(0x1), FuId::ZERO);
            bus.queue(nodes - 1, Message::new(dest, vec![0x42; 8]))
                .unwrap();
            let records = bus.run_until_quiescent(100_000_000);
            std::hint::black_box(records.len());
        });
    }
}

fn bench_enumeration() {
    bench("enumeration_14_nodes", 200, 5, || {
        let mut bus = AnalyticBus::new(BusConfig::default());
        for i in 0..14 {
            bus.add_node(NodeSpec::new(
                format!("chip{i}"),
                FullPrefix::new(0xB00 + i).unwrap(),
            ));
        }
        let assignments = mbus_core::enumeration::enumerate(&mut bus, 0).unwrap();
        std::hint::black_box(assignments.len());
    });
}

fn main() {
    bench_analytic_transactions();
    bench_wire_transactions();
    bench_ring_scaling();
    bench_enumeration();
}
