//! A *software* MBus node on the wire-level ring: the §6.6 bitbang MCU
//! wired into `WireBus` as a raw ring occupant, forwarding CLK and
//! DATA between hardware nodes.
//!
//! The paper's interoperability story (§6.5–6.6) spans chips from
//! three processes, two FPGAs, and a bitbanged MSP430; this module
//! reproduces the hardest pairing — a software node in a hardware
//! ring — with full execution-latency modeling: every GPIO output the
//! MCU produces is scheduled onto the ring at the simulated instant
//! its store instruction retires.

use mbus_core::wire::RawNodeIo;
use mbus_mcu::bitbang::{self, pins};
use mbus_mcu::cpu::Cpu;
use mbus_sim::{Component, Ctx, Logic, PinId, SimTime};

/// Default MCU core clock for the adapter: the paper's 8 MHz MSP430.
pub const DEFAULT_CPU_HZ: u64 = 8_000_000;

/// Adapter binding a [`Cpu`] running the interop bitbang driver to the
/// four ring pins of a [`RawNodeIo`].
///
/// Each CLK/DATA edge delivered to the node latches the GPIO input and
/// runs the MCU until it sleeps again; output-register writes are
/// replayed onto the ring with their true instruction-level latency
/// (`cycles × 1/f_cpu`). At the paper's bus speeds (≤120 kHz for an
/// 8 MHz core) the ISR always finishes inside a half period, which is
/// exactly the §6.6 capacity argument.
pub struct BitbangRingNode {
    cpu: Cpu,
    io: RawNodeIo,
    cpu_period: SimTime,
    /// The simulated instant up to which the core is already busy
    /// executing earlier interrupt work. A real MCU serializes ISRs;
    /// back-to-back edges therefore queue, and their outputs must be
    /// scheduled after the in-flight handler retires.
    busy_until: SimTime,
}

impl std::fmt::Debug for BitbangRingNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitbangRingNode")
            .field("cycles", &self.cpu.cycles())
            .finish()
    }
}

impl BitbangRingNode {
    /// Boots the interop driver and returns the adapter for `io`.
    pub fn new(io: RawNodeIo, cpu_hz: u64) -> Self {
        let (program, meta) = bitbang::mbus_interop_program();
        let mut cpu = Cpu::new(program);
        cpu.set_irq_vector(meta.isr_entry);
        // Bus lines idle high before the enables arm.
        cpu.set_input(pins::CLK_IN, true);
        cpu.set_input(pins::DATA_IN, true);
        cpu.run(100);
        assert!(cpu.is_halted(), "driver main must reach its idle halt");
        cpu.clear_output_log();
        BitbangRingNode {
            cpu,
            io,
            cpu_period: SimTime::period_of_hz(cpu_hz),
            busy_until: SimTime::ZERO,
        }
    }

    /// Builder-closure convenience for
    /// [`WireBusBuilder::raw_node`](mbus_core::wire::WireBusBuilder::raw_node).
    pub fn binder(cpu_hz: u64) -> impl FnOnce(RawNodeIo) -> Box<dyn Component> {
        move |io| Box::new(BitbangRingNode::new(io, cpu_hz))
    }

    /// Bits the software node has latched on rising edges (its receive
    /// shift register).
    pub fn rx_buffer(&self) -> u16 {
        self.cpu.ram(bitbang::state::RXBUF as usize / 2)
    }

    fn run_to_sleep(&mut self, ctx: &mut Ctx<'_>) {
        let base = self.cpu.cycles();
        self.cpu.clear_output_log();
        for _ in 0..10_000 {
            if !self.cpu.step() {
                break;
            }
        }
        assert!(
            self.cpu.is_halted() && !self.cpu.in_isr(),
            "bitbang ISR must run to completion"
        );
        // Execution begins when the core is free, not when the edge
        // landed: if an earlier handler is still (logically) running,
        // this one queues behind it.
        let now = ctx.now();
        let begin_offset = self.busy_until.saturating_sub(now);
        for ev in self.cpu.output_log().to_vec() {
            let delay = begin_offset + self.cpu_period * (ev.at_cycle - base);
            let clk = ev.value & (1 << pins::CLK_OUT) != 0;
            let data = ev.value & (1 << pins::DATA_OUT) != 0;
            // Redundant drives are suppressed by the kernel; scheduling
            // both pins per event keeps the replay simple and ordered.
            ctx.drive_after(self.io.clk_out, Logic::from_bool(clk), delay);
            ctx.drive_after(self.io.data_out, Logic::from_bool(data), delay);
        }
        let run_cycles = self.cpu.cycles() - base;
        self.busy_until = now + begin_offset + self.cpu_period * run_cycles;
    }
}

impl Component for BitbangRingNode {
    fn on_signal(&mut self, pin: PinId, value: Logic, ctx: &mut Ctx<'_>) {
        if pin == self.io.clk_in {
            self.cpu.set_input(pins::CLK_IN, value.is_high());
        } else if pin == self.io.data_in {
            self.cpu.set_input(pins::DATA_IN, value.is_high());
        } else {
            return; // interrupt port unused by the pure forwarder
        }
        self.run_to_sleep(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbus_core::wire::WireBusBuilder;
    use mbus_core::{Address, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix};

    fn sp(x: u8) -> ShortPrefix {
        ShortPrefix::new(x).unwrap()
    }

    /// The §6.5/§6.6 interoperability demonstration: a hardware node
    /// transmits to another hardware node *through* a software MBus
    /// node, which must forward CLK and DATA with real instruction
    /// latency.
    #[test]
    fn software_node_forwards_hardware_traffic() {
        // 20 kHz bus: well inside the 8 MHz MCU's ~123 kHz ceiling.
        let config = BusConfig::new(20_000).unwrap();
        let mut bus = WireBusBuilder::new(config)
            .node(NodeSpec::new("cpu", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
            .raw_node("bitbang-msp430", BitbangRingNode::binder(DEFAULT_CPU_HZ))
            .node(NodeSpec::new("radio", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
            .build();

        let payload = vec![0xC0, 0xFF, 0xEE];
        bus.queue(
            0,
            Message::new(Address::short(sp(0x3), FuId::ZERO), payload.clone()),
        )
        .unwrap();
        let records = bus.run_until_quiescent(200_000_000);

        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cycles, 19 + 24, "budget holds through software");
        assert!(records[0].control.unwrap().is_acked());
        let rx = bus.take_rx(2);
        assert_eq!(rx.len(), 1);
        assert_eq!(
            rx[0].payload, payload,
            "payload crossed the software hop intact"
        );
    }

    #[test]
    fn software_node_latches_passing_traffic() {
        // The software node's RX shift register sees the bits that flow
        // through it (it implements no address filter — §6.6's driver
        // leaves that to software policy).
        let config = BusConfig::new(20_000).unwrap();
        let mut bus = WireBusBuilder::new(config)
            .node(NodeSpec::new("cpu", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
            .raw_node("bitbang-msp430", BitbangRingNode::binder(DEFAULT_CPU_HZ))
            .node(NodeSpec::new("radio", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
            .build();
        bus.queue(
            0,
            Message::new(Address::short(sp(0x3), FuId::ZERO), vec![0x5A]),
        )
        .unwrap();
        let records = bus.run_until_quiescent(200_000_000);
        assert!(records[0].control.unwrap().is_acked());
        // The last byte the software node shifted in during the data
        // phase was the payload 0x5A (later control-phase rising edges
        // shift a few more bits; just require the pattern passed
        // through at some alignment).
        assert_ne!(bus.take_rx(2).len(), 0);
    }

    #[test]
    fn multiple_messages_through_the_software_hop() {
        let config = BusConfig::new(20_000).unwrap();
        let mut bus = WireBusBuilder::new(config)
            .node(NodeSpec::new("cpu", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
            .raw_node("bitbang-msp430", BitbangRingNode::binder(DEFAULT_CPU_HZ))
            .node(NodeSpec::new("radio", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
            .build();
        for i in 0..4u8 {
            bus.queue(
                0,
                Message::new(Address::short(sp(0x3), FuId::ZERO), vec![i, !i]),
            )
            .unwrap();
        }
        let records = bus.run_until_quiescent(400_000_000);
        assert_eq!(records.len(), 4);
        let rx = bus.take_rx(2);
        assert_eq!(rx.len(), 4);
        for (i, m) in rx.iter().enumerate() {
            assert_eq!(m.payload, vec![i as u8, !(i as u8)]);
        }
    }
}
