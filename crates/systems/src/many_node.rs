//! Many-node scalability (§6.4): the Fig. 9 frequency ceiling and the
//! Fig. 14 saturating transaction rate, measured by actually running
//! the bus rather than just evaluating the closed forms.

use mbus_core::{
    config, timing, Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec,
    ShortPrefix,
};
use mbus_sim::SimTime;

/// Builds an `n`-node analytic bus at `clock_hz` with zero mediator
/// wakeup latency (back-to-back saturation measurement).
///
/// # Panics
///
/// Panics for fewer than 2 or more than 14 nodes (the short-address
/// population limit).
pub fn build_bus(n: usize, clock_hz: u64) -> AnalyticBus {
    assert!((2..=14).contains(&n), "2..=14 short-addressed nodes");
    let config = BusConfig::new(clock_hz)
        .expect("valid clock")
        .with_mediator_wakeup_cycles(0);
    let mut bus = AnalyticBus::new(config);
    for i in 0..n {
        bus.add_node(
            NodeSpec::new(
                format!("n{i}"),
                FullPrefix::new(0x200 + i as u32).expect("prefix"),
            )
            .with_short_prefix(ShortPrefix::new((i + 1) as u8).expect("prefix")),
        );
    }
    bus
}

/// Measures the saturating transaction rate by running back-to-back
/// `payload_bytes` messages for `duration` of bus time (Fig. 14).
pub fn measured_saturating_rate(payload_bytes: usize, clock_hz: u64, duration: SimTime) -> f64 {
    let mut bus = build_bus(2, clock_hz);
    let dest = Address::short(ShortPrefix::new(0x2).expect("prefix"), FuId::ZERO);
    let mut transactions = 0u64;
    while bus.now() < duration {
        bus.queue(0, Message::new(dest, vec![0xA5; payload_bytes]))
            .expect("payload fits");
        bus.run_transaction().expect("transaction runs");
        transactions += 1;
    }
    transactions as f64 / bus.now().as_secs_f64()
}

/// Fig. 9's series: `(nodes, max clock Hz)` for 2..=14 nodes at the
/// specification's 10 ns hop delay.
pub fn fig9_series() -> Vec<(usize, u64)> {
    (2..=14)
        .map(|n| (n, config::max_clock_hz(n, SimTime::from_ns(10))))
        .collect()
}

/// Fig. 14's grid: transactions/s for each payload length at each of
/// the paper's four clock rates.
pub fn fig14_series(payloads: &[usize]) -> Vec<(u64, Vec<f64>)> {
    [100_000u64, 400_000, 1_000_000, 7_100_000]
        .iter()
        .map(|&hz| {
            let rates = payloads
                .iter()
                .map(|&n| timing::saturating_transaction_rate(n, hz))
                .collect();
            (hz, rates)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rate_matches_closed_form() {
        // The engine, run flat out, must reproduce the Fig. 14 formula.
        for payload in [0usize, 8, 24] {
            let formula = timing::saturating_transaction_rate(payload, 400_000);
            let measured = measured_saturating_rate(payload, 400_000, SimTime::from_ms(500));
            let err = (measured - formula).abs() / formula;
            assert!(err < 0.01, "payload {payload}: {measured} vs {formula}");
        }
    }

    #[test]
    fn fig9_endpoints() {
        let series = fig9_series();
        assert_eq!(series.first(), Some(&(2, 50_000_000)));
        let (n, f) = *series.last().unwrap();
        assert_eq!(n, 14);
        assert!((7_100_000..=7_150_000).contains(&f));
    }

    #[test]
    fn fig14_rates_span_the_papers_axes() {
        let payloads = [0usize, 8, 16, 40];
        let grid = fig14_series(&payloads);
        assert_eq!(grid.len(), 4);
        // Slowest corner: 100 kHz, 40 B → ~295 txn/s; fastest:
        // 7.1 MHz, 0 B → ~374k txn/s. The paper's y-axis runs
        // 0.1..1000 for its shown range.
        let slow = grid[0].1[3];
        assert!((slow - 100_000.0 / 339.0).abs() < 0.01);
        let fast = grid[3].1[0];
        assert!(fast > 370_000.0);
        // Monotonic: longer payloads → fewer transactions/s.
        for (_, rates) in &grid {
            for w in rates.windows(2) {
                assert!(w[0] > w[1]);
            }
        }
    }

    #[test]
    fn two_nodes_sending_at_1hz_equals_one_at_2hz() {
        // §6.4's utilization argument. Run both patterns and compare
        // busy cycles.
        let dest = |p: u8| Address::short(ShortPrefix::new(p).expect("p"), FuId::ZERO);
        let mut two_senders = build_bus(3, 400_000);
        for _ in 0..10 {
            two_senders
                .queue(1, Message::new(dest(0x1), vec![0; 4]))
                .unwrap();
            two_senders.run_transaction();
            two_senders
                .queue(2, Message::new(dest(0x1), vec![0; 4]))
                .unwrap();
            two_senders.run_transaction();
        }
        let mut one_sender = build_bus(3, 400_000);
        for _ in 0..20 {
            one_sender
                .queue(1, Message::new(dest(0x1), vec![0; 4]))
                .unwrap();
            one_sender.run_transaction();
        }
        assert_eq!(
            two_senders.stats().busy_cycles,
            one_sender.stats().busy_cycles
        );
    }

    #[test]
    #[should_panic(expected = "2..=14")]
    fn population_limit_enforced() {
        let _ = build_bus(15, 400_000);
    }
}
