//! The §6.3.2 "monitor and alert" system: a motion-activated 160×160,
//! 9-bit grayscale imager with an always-on motion detector, a 5 µAh
//! battery, a Cortex-M0, and a radio (Fig. 13).
//!
//! The system demonstrates two MBus faculties: the interrupt-port
//! null-transaction wakeup (the motion detector "simply needs to
//! assert one wire"), and efficient long transfers (a 28.8 kB image
//! moved row-by-row with 1.31 % overhead).

use mbus_core::{
    timing, Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix,
};
use mbus_sim::{SimTime, SmallRng};

/// Image geometry: 160×160 pixels, 9-bit single-channel grayscale.
pub const WIDTH: usize = 160;
/// Image height in pixels.
pub const HEIGHT: usize = 160;
/// Bits per pixel.
pub const BITS_PER_PIXEL: usize = 9;
/// Packed bytes per row: 160 × 9 / 8 = 180.
pub const ROW_BYTES: usize = WIDTH * BITS_PER_PIXEL / 8;
/// Packed bytes per full image: 28,800 (the paper's 28.8 kB).
pub const IMAGE_BYTES: usize = ROW_BYTES * HEIGHT;

/// A captured 9-bit grayscale image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Image {
    pixels: Vec<u16>,
}

impl Image {
    /// Synthesizes a deterministic scene: a radial gradient with
    /// sensor noise — a stand-in for Fig. 13(b)'s sample capture.
    pub fn synthetic(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pixels = Vec::with_capacity(WIDTH * HEIGHT);
        for y in 0..HEIGHT {
            for x in 0..WIDTH {
                let dx = x as f64 - WIDTH as f64 / 2.0;
                let dy = y as f64 - HEIGHT as f64 / 2.0;
                let r = (dx * dx + dy * dy).sqrt() / 113.0; // ≤1.0
                let base = (511.0 * (1.0 - r).max(0.0)) as u16;
                let noise = rng.gen_range(0..16) as u16;
                pixels.push((base + noise).min(511));
            }
        }
        Image { pixels }
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> u16 {
        assert!(x < WIDTH && y < HEIGHT);
        self.pixels[y * WIDTH + x]
    }

    /// Packs one row into its 180-byte wire form (9-bit pixels,
    /// MSB-first).
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of range.
    pub fn pack_row(&self, y: usize) -> Vec<u8> {
        assert!(y < HEIGHT);
        let mut bits = Vec::with_capacity(WIDTH * BITS_PER_PIXEL);
        for x in 0..WIDTH {
            let p = self.pixels[y * WIDTH + x];
            for b in (0..BITS_PER_PIXEL).rev() {
                bits.push(p & (1 << b) != 0);
            }
        }
        bits.chunks(8)
            .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
            .collect()
    }

    /// Unpacks a 180-byte row.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`ROW_BYTES`] long.
    pub fn unpack_row(bytes: &[u8]) -> Vec<u16> {
        assert_eq!(bytes.len(), ROW_BYTES, "a packed row is 180 bytes");
        let bits: Vec<bool> = bytes
            .iter()
            .flat_map(|&byte| (0..8).map(move |i| byte & (0x80 >> i) != 0))
            .collect();
        bits.chunks(BITS_PER_PIXEL)
            .map(|c| c.iter().fold(0u16, |acc, &b| (acc << 1) | b as u16))
            .collect()
    }

    /// Reassembles an image from 160 packed rows.
    ///
    /// # Panics
    ///
    /// Panics on a wrong row count or size.
    pub fn from_rows(rows: &[Vec<u8>]) -> Self {
        assert_eq!(rows.len(), HEIGHT, "need 160 rows");
        let mut pixels = Vec::with_capacity(WIDTH * HEIGHT);
        for row in rows {
            pixels.extend(Image::unpack_row(row));
        }
        Image { pixels }
    }
}

/// The §6.3.2 transfer arithmetic, exactly as the paper states it.
#[derive(Clone, Copy, Debug)]
pub struct TransferAnalysis {
    /// MBus overhead sending the whole image as one message: 19 bits.
    pub mbus_single_bits: u32,
    /// MBus overhead for 160 row messages: 3,040 bits.
    pub mbus_rows_bits: u32,
    /// Extra bits paid for row-by-row: 3,021 (1.31 %).
    pub chunking_extra_bits: u32,
    /// I2C overhead for the whole image: 28,810 bits (12.5 %).
    pub i2c_single_bits: u32,
    /// I2C overhead row-by-row: 30,400 bits (13.2 %).
    pub i2c_rows_bits: u32,
}

impl TransferAnalysis {
    /// Computes the analysis for the standard 160×180 B image.
    pub fn standard() -> Self {
        let rows = HEIGHT as u32;
        TransferAnalysis {
            mbus_single_bits: timing::SHORT_OVERHEAD_CYCLES,
            mbus_rows_bits: rows * timing::SHORT_OVERHEAD_CYCLES,
            chunking_extra_bits: timing::chunking_overhead_bits(rows),
            i2c_single_bits: 10 + IMAGE_BYTES as u32,
            i2c_rows_bits: rows * (10 + ROW_BYTES as u32),
        }
    }

    /// Row-by-row extra overhead as a percent of image bits: 1.31 %.
    pub fn chunking_percent(&self) -> f64 {
        self.chunking_extra_bits as f64 / (IMAGE_BYTES as f64 * 8.0) * 100.0
    }

    /// Reduction in acknowledgment/protocol overhead vs. a
    /// byte-oriented bus: "90–99 %" (§6.3.2).
    pub fn ack_overhead_reduction_percent(&self, row_by_row: bool) -> f64 {
        let mbus = if row_by_row {
            self.mbus_rows_bits
        } else {
            self.mbus_single_bits
        } as f64;
        let i2c = if row_by_row {
            self.i2c_rows_bits
        } else {
            self.i2c_single_bits
        } as f64;
        (1.0 - mbus / i2c) * 100.0
    }
}

/// Full-image transfer time at `clock_hz`, bit-serial, sent as
/// `chunks` messages.
pub fn frame_time(clock_hz: u64, chunks: u32) -> SimTime {
    let cycles = IMAGE_BYTES as u64 * 8 + (timing::SHORT_OVERHEAD_CYCLES as u64) * chunks as u64;
    SimTime::period_of_hz(clock_hz) * cycles
}

/// The paper's §6.3.2 transfer-time arithmetic, which divides the byte
/// count (28,800) rather than the bit count by the clock: "from 4.2 ms
/// (238 fps) to 2.9 s (0.3 fps)". Reproduced for comparison; see
/// EXPERIMENTS.md.
pub fn paper_frame_time(clock_hz: u64) -> SimTime {
    SimTime::period_of_hz(clock_hz) * IMAGE_BYTES as u64
}

/// Node ring positions (the processor/mediator is ring position 0).
const IMAGER: usize = 1;
const RADIO: usize = 2;

/// The assembled motion-camera system on an [`AnalyticBus`].
#[derive(Debug)]
pub struct ImagerSystem {
    bus: AnalyticBus,
    captured: Option<Image>,
    /// Completed motion wakeups.
    pub motion_events: u64,
    seed: u64,
}

impl Default for ImagerSystem {
    fn default() -> Self {
        ImagerSystem::new()
    }
}

impl ImagerSystem {
    /// Builds the system; the imager supports the 6.67 MHz tunable
    /// maximum, but the default 400 kHz clock is used unless
    /// reconfigured.
    pub fn new() -> Self {
        let config = BusConfig::default()
            .with_max_message_bytes(IMAGE_BYTES)
            .expect("image fits the configured maximum");
        let mut bus = AnalyticBus::new(config);
        bus.add_node(
            NodeSpec::new("cpu+mediator", FullPrefix::new(0x0_0011).expect("prefix"))
                .with_short_prefix(ShortPrefix::new(0x1).expect("prefix")),
        );
        bus.add_node(
            NodeSpec::new("imager", FullPrefix::new(0x0_0012).expect("prefix"))
                .with_short_prefix(ShortPrefix::new(0x2).expect("prefix"))
                .power_aware(true),
        );
        bus.add_node(
            NodeSpec::new("radio", FullPrefix::new(0x0_0013).expect("prefix"))
                .with_short_prefix(ShortPrefix::new(0x3).expect("prefix"))
                .power_aware(true),
        );
        ImagerSystem {
            bus,
            captured: None,
            motion_events: 0,
            seed: 1,
        }
    }

    /// Retunes the bus clock (the implemented MBus clock is "run-time
    /// tunable from 10 kHz to up to 6.67 MHz").
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`BusConfig`].
    pub fn set_clock_hz(&mut self, hz: u64) -> Result<(), mbus_core::MbusError> {
        let config = BusConfig::new(hz)?.with_max_message_bytes(IMAGE_BYTES)?;
        self.bus.apply_config(config)
    }

    /// The always-on motion detector fires: one wire asserts, the bus
    /// runs a null transaction, and the imager wakes and captures.
    pub fn motion_detected(&mut self) {
        assert!(!self.bus.layer_on(IMAGER), "imager starts power-gated");
        self.bus.request_wakeup(IMAGER).expect("imager exists");
        let record = self.bus.run_transaction().expect("null transaction runs");
        assert!(record.winner.is_none(), "wakeup is a null transaction");
        self.motion_events += 1;
        self.captured = Some(Image::synthetic(self.seed));
        self.seed += 1;
    }

    /// Transfers the captured image to the radio row-by-row ("the
    /// camera sends each row as a separate message, with small delays
    /// in-between while the next row is read out"). Returns the
    /// reassembled image as the radio saw it.
    ///
    /// # Panics
    ///
    /// Panics if no image was captured.
    pub fn transfer_row_by_row(&mut self) -> Image {
        let image = self.captured.clone().expect("capture before transfer");
        let readout_gap = SimTime::from_us(50);
        for y in 0..HEIGHT {
            let row = image.pack_row(y);
            self.bus
                .queue(IMAGER, Message::new(self.radio_addr(), row))
                .expect("row fits");
            let record = self.bus.run_transaction().expect("row transaction");
            assert!(record.outcome.is_success(), "row {y} delivered");
            self.bus.advance_idle(readout_gap);
        }
        let rows: Vec<Vec<u8>> = self
            .bus
            .take_rx(RADIO)
            .into_iter()
            .map(|m| m.payload)
            .collect();
        Image::from_rows(&rows)
    }

    /// Transfers the image as a single 28.8 kB message.
    ///
    /// # Panics
    ///
    /// Panics if no image was captured.
    pub fn transfer_single_message(&mut self) -> Image {
        let image = self.captured.clone().expect("capture before transfer");
        let mut payload = Vec::with_capacity(IMAGE_BYTES);
        for y in 0..HEIGHT {
            payload.extend(image.pack_row(y));
        }
        self.bus
            .queue(IMAGER, Message::new(self.radio_addr(), payload))
            .expect("configured max admits the image");
        let record = self.bus.run_transaction().expect("image transaction");
        assert!(record.outcome.is_success());
        let rx = self.bus.take_rx(RADIO);
        let rows: Vec<Vec<u8>> = rx[0]
            .payload
            .chunks(ROW_BYTES)
            .map(<[u8]>::to_vec)
            .collect();
        Image::from_rows(&rows)
    }

    fn radio_addr(&self) -> Address {
        Address::short(ShortPrefix::new(0x3).expect("prefix"), FuId::ZERO)
    }

    /// The captured image (for comparison with what arrived).
    pub fn captured(&self) -> Option<&Image> {
        self.captured.as_ref()
    }

    /// Access to the underlying bus.
    pub fn bus(&self) -> &AnalyticBus {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_the_paper() {
        assert_eq!(ROW_BYTES, 180);
        assert_eq!(IMAGE_BYTES, 28_800, "the 28.8 kB full-resolution image");
    }

    #[test]
    fn row_packing_round_trips() {
        let img = Image::synthetic(42);
        for y in [0, 1, 79, 159] {
            let packed = img.pack_row(y);
            assert_eq!(packed.len(), ROW_BYTES);
            let pixels = Image::unpack_row(&packed);
            for (x, &p) in pixels.iter().enumerate() {
                assert_eq!(p, img.pixel(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn pixels_are_nine_bit() {
        let img = Image::synthetic(7);
        for y in 0..HEIGHT {
            for x in 0..WIDTH {
                assert!(img.pixel(x, y) < 512);
            }
        }
    }

    #[test]
    fn transfer_analysis_matches_6_3_2() {
        let a = TransferAnalysis::standard();
        assert_eq!(a.chunking_extra_bits, 3_021);
        assert!((a.chunking_percent() - 1.31).abs() < 0.005);
        assert_eq!(a.i2c_single_bits, 28_810);
        assert_eq!(a.i2c_rows_bits, 30_400);
        // "a 90−99% reduction in overhead compared to a byte-oriented
        // approach".
        let row_reduction = a.ack_overhead_reduction_percent(true);
        let single_reduction = a.ack_overhead_reduction_percent(false);
        assert!(row_reduction > 89.9, "{row_reduction}");
        assert!(single_reduction > 99.0, "{single_reduction}");
    }

    #[test]
    fn i2c_overhead_percentages() {
        let a = TransferAnalysis::standard();
        let image_bits = IMAGE_BYTES as f64 * 8.0;
        assert!((a.i2c_single_bits as f64 / image_bits * 100.0 - 12.5).abs() < 0.01);
        assert!((a.i2c_rows_bits as f64 / image_bits * 100.0 - 13.2).abs() < 0.01);
    }

    #[test]
    fn motion_wakes_and_row_transfer_is_lossless() {
        let mut sys = ImagerSystem::new();
        sys.motion_detected();
        let received = sys.transfer_row_by_row();
        assert_eq!(&received, sys.captured().unwrap());
        assert_eq!(sys.bus().stats().transactions, 1 + 160);
    }

    #[test]
    fn single_message_transfer_is_lossless() {
        let mut sys = ImagerSystem::new();
        sys.motion_detected();
        let received = sys.transfer_single_message();
        assert_eq!(&received, sys.captured().unwrap());
    }

    #[test]
    fn frame_times_bracket_the_clock_range() {
        // Bit-serial: 28.8 kB × 8 bits at 6.67 MHz ≈ 34.6 ms; at
        // 10 kHz ≈ 23 s.
        let fast = frame_time(6_670_000, 160);
        assert!((fast.as_secs_f64() - 0.0346).abs() < 0.001, "{fast}");
        let slow = frame_time(10_000, 160);
        assert!((slow.as_secs_f64() - 23.3).abs() < 0.2, "{slow}");
        // The paper's byte-based arithmetic: 4.3 ms and 2.88 s.
        let paper_fast = paper_frame_time(6_670_000);
        assert!((paper_fast.as_secs_f64() - 0.00432).abs() < 0.0002);
        let paper_slow = paper_frame_time(10_000);
        assert!((paper_slow.as_secs_f64() - 2.88).abs() < 0.01);
    }

    #[test]
    fn clock_retuning_works_when_idle() {
        let mut sys = ImagerSystem::new();
        sys.set_clock_hz(6_670_000).unwrap();
        assert_eq!(sys.bus().config().clock_hz(), 6_670_000);
        sys.motion_detected();
        let img = sys.transfer_row_by_row();
        assert_eq!(&img, sys.captured().unwrap());
    }

    #[test]
    #[should_panic(expected = "capture before transfer")]
    fn transfer_requires_capture() {
        let mut sys = ImagerSystem::new();
        let _ = sys.transfer_row_by_row();
    }
}
