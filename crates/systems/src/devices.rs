//! Device energy models for the §6.3 systems.
//!
//! The paper reports only aggregate numbers (each sense-and-send event
//! costs ≈100 nJ; the processor uses ≈20 pJ/cycle; system idle is
//! 8 nW). The per-device split below is *calibrated* so the aggregates
//! come out exactly as measured — see EXPERIMENTS.md for the
//! calibration table.

use mbus_power::units::{Energy, Power};

/// The ARM Cortex-M0 processor model.
///
/// §6.3.1: "Our processor uses ~20 pJ/cycle and requires ~50 cycles to
/// handle an interrupt and copy an 8 byte message to be sent again."
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Processor {
    /// Energy per executed cycle.
    pub energy_per_cycle: Energy,
    /// Cycles to take an interrupt and re-send an 8-byte message.
    pub relay_cycles: u64,
    /// Cycles of orchestration per sense-and-send event (wake, issue
    /// the request, return to sleep). Calibrated.
    pub orchestration_cycles: u64,
}

impl Default for Processor {
    fn default() -> Self {
        Processor {
            energy_per_cycle: Energy::from_pj(20.0),
            relay_cycles: 50,
            orchestration_cycles: 1_000,
        }
    }
}

impl Processor {
    /// Energy to relay a message through the processor — the 1 nJ the
    /// any-to-any MBus transfer avoids.
    pub fn relay_energy(&self) -> Energy {
        self.energy_per_cycle * self.relay_cycles as f64
    }

    /// Energy to orchestrate one sense-and-send event.
    pub fn orchestration_energy(&self) -> Energy {
        self.energy_per_cycle * self.orchestration_cycles as f64
    }
}

/// The ultra-low power temperature sensor front-end.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TemperatureSensor {
    /// Energy per sample (calibrated).
    pub sample_energy: Energy,
    /// Millikelvin per LSB of the 16-bit reading (arbitrary scale used
    /// by the synthetic workload).
    pub lsb_mk: u32,
}

impl Default for TemperatureSensor {
    fn default() -> Self {
        TemperatureSensor {
            sample_energy: Energy::from_nj(25.0),
            lsb_mk: 10,
        }
    }
}

impl TemperatureSensor {
    /// Produces a deterministic synthetic reading for sample `k` —
    /// a slow sinusoid plus a small drift, quantized to the sensor's
    /// scale.
    pub fn sample(&self, k: u64) -> u16 {
        let t = k as f64 / 40.0;
        let mk = 296_150.0 + 1_500.0 * (t).sin() + 3.0 * t; // ~23 °C
        (mk / self.lsb_mk as f64) as u16
    }
}

/// The 900 MHz near-field radio.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Radio {
    /// Fixed energy per transmitted packet (calibrated).
    pub packet_energy: Energy,
    /// Additional energy per payload byte.
    pub per_byte_energy: Energy,
}

impl Default for Radio {
    fn default() -> Self {
        Radio {
            packet_energy: Energy::from_nj(30.0),
            per_byte_energy: Energy::from_nj(2.0),
        }
    }
}

impl Radio {
    /// Energy to transmit an `n`-byte payload.
    pub fn transmit_energy(&self, n: usize) -> Energy {
        self.packet_energy + self.per_byte_energy * n as f64
    }
}

/// The measured whole-system standby power (§6.2: "The total idle power
/// draw of the temperature system is 8 nW").
pub fn system_idle_power() -> Power {
    Power::from_nw(8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_relay_is_one_nanojoule() {
        // 50 cycles × 20 pJ/cycle = 1 nJ (§6.3.1).
        let e = Processor::default().relay_energy();
        assert!((e.as_nj() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sensor_readings_are_plausible_and_deterministic() {
        let s = TemperatureSensor::default();
        let a = s.sample(0);
        let b = s.sample(0);
        assert_eq!(a, b, "deterministic");
        // ~23 °C at 10 mK/LSB → ≈29,615 LSB.
        assert!((29_000..30_500).contains(&a), "{a}");
        // Varies over time.
        let later = s.sample(100);
        assert_ne!(a, later);
    }

    #[test]
    fn radio_energy_scales_with_payload() {
        let r = Radio::default();
        let e8 = r.transmit_energy(8);
        let e16 = r.transmit_energy(16);
        assert!((e8.as_nj() - 46.0).abs() < 1e-9);
        assert!(e16 > e8);
    }

    #[test]
    fn idle_floor_is_8nw() {
        assert_eq!(system_idle_power().as_nw(), 8.0);
    }
}
