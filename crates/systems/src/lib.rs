//! # mbus-systems — the paper's microbenchmark systems (§6.3–6.4)
//!
//! Complete system models built on the `mbus-core` engines:
//!
//! * [`temperature`] — the Fig. 12 "sense and send" stack (processor +
//!   mediator, temperature sensor, radio): periodic sampling, direct
//!   vs. processor-routed replies, the 6.6 nJ / ~7 % per-event saving,
//!   and the 44.5 → 47.5-day battery-lifetime extension.
//! * [`imager`] — the Fig. 13 motion-activated camera: null-transaction
//!   wakeup from an always-on motion detector, 160×160×9-bit image
//!   capture, row-by-row transfer with 1.31 % overhead, and the I2C
//!   comparisons of §6.3.2.
//! * [`many_node`] — §6.4's scalability sweeps: Fig. 9's frequency
//!   ceiling and Fig. 14's saturating transaction rate, validated by
//!   running the engine flat-out.
//! * [`devices`] — calibrated device energy models (the paper reports
//!   only aggregates; EXPERIMENTS.md shows the calibration).
//!
//! ## Example
//!
//! ```
//! use mbus_systems::temperature::{Routing, TemperatureSystem};
//!
//! let mut system = TemperatureSystem::new(Routing::Direct);
//! system.run_events(2);
//! let energy = system.average_event_energy().total();
//! assert!((energy.as_nj() - 100.0).abs() < 1.5); // §6.3.1's ~100 nJ
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitbang_node;
pub mod devices;
pub mod imager;
pub mod many_node;
pub mod temperature;

pub use bitbang_node::BitbangRingNode;
pub use imager::{Image, ImagerSystem};
pub use temperature::{Routing, SenseAndSendComparison, TemperatureSystem};
