//! The §6.3.1 "sense and send" system: a 2 µAh battery, a 900 MHz
//! near-field radio, an ARM Cortex-M0 (hosting the mediator), and an
//! ultra-low power temperature sensor, all on MBus (Fig. 12).
//!
//! Every 15 s the processor asks the sensor for a reading; the sensor
//! replies either *directly to the radio* (MBus's any-to-any transfer)
//! or *via the processor* (the master-routed pattern SPI-class buses
//! force). The energy difference — 6.6 nJ per event, ≈7 % — is the
//! paper's headline system result.

use mbus_core::{
    Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix,
};
use mbus_power::battery::Battery;
use mbus_power::mbus_model::{message_energy, Calibration};
use mbus_power::units::Energy;
use mbus_sim::SimTime;

use crate::devices::{Processor, Radio, TemperatureSensor};

/// How the sensor's response reaches the radio.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Routing {
    /// Sensor transmits straight to the radio (MBus any-to-any).
    Direct,
    /// Sensor replies to the processor, which relays to the radio —
    /// what a single-master bus would require.
    ViaProcessor,
}

/// Command byte in the 4-byte request.
const CMD_SAMPLE: u8 = 0x51;

/// Node ring positions.
const CPU: usize = 0;
const SENSOR: usize = 1;
const RADIO: usize = 2;

fn short(prefix: u8) -> Address {
    Address::short(ShortPrefix::new(prefix).expect("valid prefix"), FuId::ZERO)
}

/// Per-event energy breakdown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventEnergy {
    /// Energy spent on MBus transactions.
    pub bus: Energy,
    /// Energy spent in the sensor, radio, and processor.
    pub devices: Energy,
}

impl EventEnergy {
    /// Total event energy.
    pub fn total(&self) -> Energy {
        self.bus + self.devices
    }
}

/// The assembled temperature-logging system.
#[derive(Debug)]
pub struct TemperatureSystem {
    bus: AnalyticBus,
    routing: Routing,
    processor: Processor,
    sensor: TemperatureSensor,
    radio: Radio,
    sample_period: SimTime,
    events: u64,
    device_energy: Energy,
    bus_energy: Energy,
    /// Payloads handed to the radio for transmission.
    pub radio_packets: Vec<Vec<u8>>,
}

impl TemperatureSystem {
    /// Builds the 3-chip stack at the paper's default 400 kHz bus clock
    /// and 15 s sample period.
    pub fn new(routing: Routing) -> Self {
        let mut bus = AnalyticBus::new(BusConfig::default());
        bus.add_node(
            NodeSpec::new("cpu+mediator", FullPrefix::new(0x0_0001).expect("prefix"))
                .with_short_prefix(ShortPrefix::new(0x1).expect("prefix")),
        );
        bus.add_node(
            NodeSpec::new("temp sensor", FullPrefix::new(0x0_0002).expect("prefix"))
                .with_short_prefix(ShortPrefix::new(0x2).expect("prefix"))
                .power_aware(true),
        );
        bus.add_node(
            NodeSpec::new("radio", FullPrefix::new(0x0_0003).expect("prefix"))
                .with_short_prefix(ShortPrefix::new(0x3).expect("prefix"))
                .power_aware(true),
        );
        TemperatureSystem {
            bus,
            routing,
            processor: Processor::default(),
            sensor: TemperatureSensor::default(),
            radio: Radio::default(),
            sample_period: SimTime::from_s(15),
            events: 0,
            device_energy: Energy::ZERO,
            bus_energy: Energy::ZERO,
            radio_packets: Vec::new(),
        }
    }

    /// Overrides the sample period.
    pub fn with_sample_period(mut self, period: SimTime) -> Self {
        self.sample_period = period;
        self
    }

    fn charge_message(&mut self, msg: &Message) {
        self.bus_energy += message_energy(msg, 3, Calibration::Measured);
    }

    /// Runs one complete sense-and-send event and advances to the next
    /// sample instant.
    pub fn run_event(&mut self) {
        let k = self.events;

        // 1. Processor wakes, orchestrates, requests a reading. The
        //    4-byte request names the reply destination.
        self.device_energy += self.processor.orchestration_energy();
        let reply_to = match self.routing {
            Routing::Direct => 0x3,
            Routing::ViaProcessor => 0x1,
        };
        let request = Message::new(short(0x2), vec![CMD_SAMPLE, reply_to, 0x00, 0x00]);
        self.charge_message(&request);
        self.bus.queue(CPU, request).expect("queue request");
        self.bus.run_transaction().expect("request transaction");

        // 2. Sensor wakes (bus-provided), samples, replies with an
        //    8-byte reading (sequence number + value + padding).
        let rx = self.bus.take_rx(SENSOR);
        assert_eq!(rx.len(), 1, "sensor received the request");
        assert_eq!(rx[0].payload[0], CMD_SAMPLE);
        self.device_energy += self.sensor.sample_energy;
        let value = self.sensor.sample(k);
        let reading = vec![
            (k >> 8) as u8,
            k as u8,
            (value >> 8) as u8,
            value as u8,
            0,
            0,
            0,
            0,
        ];
        let dest = rx[0].payload[1];
        let response = Message::new(short(dest), reading.clone());
        self.charge_message(&response);
        self.bus.queue(SENSOR, response).expect("queue response");
        self.bus.run_transaction().expect("response transaction");

        // 3. If routed via the processor, it relays to the radio.
        if self.routing == Routing::ViaProcessor {
            let relayed = self.bus.take_rx(CPU);
            assert_eq!(relayed.len(), 1, "cpu received the reading");
            self.device_energy += self.processor.relay_energy();
            let fwd = Message::new(short(0x3), relayed[0].payload.clone());
            self.charge_message(&fwd);
            self.bus.queue(CPU, fwd).expect("queue relay");
            self.bus.run_transaction().expect("relay transaction");
        }

        // 4. Radio transmits.
        let pkt = self.bus.take_rx(RADIO);
        assert_eq!(pkt.len(), 1, "radio received the reading");
        self.device_energy += self.radio.transmit_energy(pkt[0].payload.len());
        self.radio_packets.push(pkt[0].payload.clone());

        self.events += 1;
        // Sleep until the next sample.
        let next = self.sample_period * self.events;
        if next > self.bus.now() {
            self.bus.advance_idle(next - self.bus.now());
        }
    }

    /// Runs `n` events.
    pub fn run_events(&mut self, n: u64) {
        for _ in 0..n {
            self.run_event();
        }
    }

    /// Number of completed events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Average energy per event so far.
    ///
    /// # Panics
    ///
    /// Panics before the first event.
    pub fn average_event_energy(&self) -> EventEnergy {
        assert!(self.events > 0, "run at least one event first");
        let n = self.events as f64;
        EventEnergy {
            bus: self.bus_energy / n,
            devices: self.device_energy / n,
        }
    }

    /// Bus utilization so far — §6.3.1 reports 0.0022 % at 400 kHz.
    pub fn utilization(&self) -> f64 {
        self.bus
            .stats()
            .utilization(self.bus.now(), self.bus.config().clock_hz())
    }

    /// Node lifetime on the paper's 2 µAh battery, charging only the
    /// event energy (the paper's §6.3.1 arithmetic; the 8 nW idle floor
    /// is discussed separately in EXPERIMENTS.md).
    pub fn lifetime_days(&self) -> f64 {
        let avg_power = self.average_event_energy().total() / self.sample_period;
        Battery::temperature_system().lifetime_days(avg_power)
    }

    /// Access to the underlying bus (inspection).
    pub fn bus(&self) -> &AnalyticBus {
        &self.bus
    }
}

/// The §6.3.1 comparison: energy saved per event by direct any-to-any
/// routing, and the battery-lifetime extension it buys.
#[derive(Clone, Copy, Debug)]
pub struct SenseAndSendComparison {
    /// Average event energy with direct routing.
    pub direct: Energy,
    /// Average event energy routed via the processor.
    pub via_processor: Energy,
    /// Lifetime (days) with direct routing.
    pub direct_days: f64,
    /// Lifetime (days) via the processor.
    pub via_days: f64,
}

impl SenseAndSendComparison {
    /// Runs both configurations for `events` events and compares.
    pub fn run(events: u64) -> Self {
        let mut direct = TemperatureSystem::new(Routing::Direct);
        direct.run_events(events);
        let mut via = TemperatureSystem::new(Routing::ViaProcessor);
        via.run_events(events);
        SenseAndSendComparison {
            direct: direct.average_event_energy().total(),
            via_processor: via.average_event_energy().total(),
            direct_days: direct.lifetime_days(),
            via_days: via.lifetime_days(),
        }
    }

    /// Energy saved per event.
    pub fn savings(&self) -> Energy {
        self.via_processor - self.direct
    }

    /// Lifetime extension in hours.
    pub fn extension_hours(&self) -> f64 {
        (self.direct_days - self.via_days) * 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_energy_is_about_100_nj() {
        // §6.3.1: "each sense and send event requires about 100 nJ".
        let mut sys = TemperatureSystem::new(Routing::Direct);
        sys.run_events(4);
        let e = sys.average_event_energy();
        assert!((e.total().as_nj() - 100.0).abs() < 1.0, "{}", e.total());
    }

    #[test]
    fn direct_routing_saves_6_6_nj() {
        // "MBus reduces the energy consumption of each sense and send
        // event by 6.6 nJ (~7%)".
        let cmp = SenseAndSendComparison::run(3);
        let saved = cmp.savings().as_nj();
        assert!((saved - 6.6).abs() < 0.1, "{saved}");
        let pct = cmp.savings() / cmp.direct * 100.0;
        assert!((pct - 6.6).abs() < 0.5, "{pct}%");
    }

    #[test]
    fn lifetimes_match_the_paper() {
        // "...this increases node lifetime by 71 hours, from ~44.5 to
        // ~47.5 days."
        let cmp = SenseAndSendComparison::run(3);
        assert!((cmp.via_days - 44.5).abs() < 0.5, "{}", cmp.via_days);
        assert!((cmp.direct_days - 47.5).abs() < 0.5, "{}", cmp.direct_days);
        assert!((cmp.extension_hours() - 71.0).abs() < 5.0);
    }

    #[test]
    fn utilization_is_0_0022_percent() {
        let mut sys = TemperatureSystem::new(Routing::Direct);
        sys.run_events(4);
        let pct = sys.utilization() * 100.0;
        assert!((pct - 0.0022).abs() < 0.0004, "{pct}");
    }

    #[test]
    fn radio_receives_monotonic_sequence_numbers() {
        let mut sys = TemperatureSystem::new(Routing::Direct);
        sys.run_events(5);
        assert_eq!(sys.radio_packets.len(), 5);
        for (i, pkt) in sys.radio_packets.iter().enumerate() {
            let seq = u16::from_be_bytes([pkt[0], pkt[1]]);
            assert_eq!(seq as usize, i);
        }
    }

    #[test]
    fn via_processor_delivers_identical_data() {
        let mut direct = TemperatureSystem::new(Routing::Direct);
        let mut via = TemperatureSystem::new(Routing::ViaProcessor);
        direct.run_events(3);
        via.run_events(3);
        assert_eq!(direct.radio_packets, via.radio_packets);
    }

    #[test]
    fn direct_routing_uses_fewer_transactions() {
        let mut direct = TemperatureSystem::new(Routing::Direct);
        let mut via = TemperatureSystem::new(Routing::ViaProcessor);
        direct.run_events(2);
        via.run_events(2);
        assert_eq!(direct.bus().stats().transactions, 4);
        assert_eq!(via.bus().stats().transactions, 6);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn average_requires_an_event() {
        let sys = TemperatureSystem::new(Routing::Direct);
        let _ = sys.average_event_energy();
    }
}
