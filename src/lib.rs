//! Umbrella crate for the MBus (Pannuto et al., ISCA 2015)
//! reproduction workspace.
//!
//! The real code lives in the `crates/` members; this package exists to
//! host the workspace-level integration tests (`tests/`) and the
//! runnable examples (`examples/`), and re-exports the member crates so
//! downstream experiments can depend on one name.

#![forbid(unsafe_code)]

pub use mbus_core as core;
pub use mbus_mcu as mcu;
pub use mbus_power as power;
pub use mbus_sim as sim;
pub use mbus_systems as systems;
