//! End-to-end layer-controller tests: FU-ID-addressed messages crossing
//! the bus and landing in a chip's register file, memory, and
//! mailboxes — the Fig. 8 interface exercised through real traffic.

use mbus_core::layer::{LayerAction, LayerController, FU_MEMORY_READ, FU_MEMORY_WRITE};
use mbus_core::{
    Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix,
};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn fu(x: u8) -> FuId {
    FuId::new(x).unwrap()
}

/// A two-chip system where node 1's layer is a real `LayerController`.
struct Chip {
    bus: AnalyticBus,
    layer: LayerController,
}

impl Chip {
    fn new() -> Self {
        let mut bus = AnalyticBus::new(BusConfig::default());
        bus.add_node(
            NodeSpec::new("cpu", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)),
        );
        bus.add_node(
            NodeSpec::new("chip", FullPrefix::new(0x2).unwrap()).with_short_prefix(sp(0x2)),
        );
        let mut layer = LayerController::new(256);
        layer.set_reply_dest(Address::short(sp(0x1), FuId::ZERO));
        Chip { bus, layer }
    }

    /// Sends a message from the cpu to the chip's `fu` and pumps it
    /// through the layer, returning the layer's action.
    fn send(&mut self, fu_id: FuId, payload: Vec<u8>) -> LayerAction {
        self.bus
            .queue(0, Message::new(Address::short(sp(0x2), fu_id), payload))
            .unwrap();
        self.bus.run_transaction().unwrap();
        let rx = self.bus.take_rx(1);
        assert_eq!(rx.len(), 1);
        self.layer.deliver(&rx[0])
    }

    /// Transmits any queued layer replies back over the bus and returns
    /// what the cpu received.
    fn pump_replies(&mut self) -> Vec<Vec<u8>> {
        for reply in self.layer.take_replies() {
            self.bus.queue(1, reply).unwrap();
            self.bus.run_transaction().unwrap();
        }
        self.bus.take_rx(0).into_iter().map(|m| m.payload).collect()
    }
}

#[test]
fn register_writes_over_the_bus() {
    let mut chip = Chip::new();
    let action = chip.send(
        FuId::ZERO,
        vec![0x10, 0x00, 0x12, 0x34, 0x42, 0xAB, 0xCD, 0xEF],
    );
    assert_eq!(action, LayerAction::RegistersWritten { count: 2 });
    assert_eq!(chip.layer.register(0x10), 0x001234);
    assert_eq!(chip.layer.register(0x42), 0xABCDEF);
}

#[test]
fn memory_write_then_read_round_trip_over_the_bus() {
    let mut chip = Chip::new();

    // Write three words at byte address 0x40.
    let mut payload = 0x40u32.to_be_bytes().to_vec();
    for w in [0x1111_1111u32, 0x2222_2222, 0x3333_3333] {
        payload.extend(w.to_be_bytes());
    }
    let action = chip.send(fu(FU_MEMORY_WRITE), payload);
    assert_eq!(
        action,
        LayerAction::MemoryWritten {
            addr: 0x40,
            words: 3
        }
    );

    // Read them back: the layer queues a reply, which crosses the bus.
    let mut req = 0x40u32.to_be_bytes().to_vec();
    req.extend(3u32.to_be_bytes());
    let action = chip.send(fu(FU_MEMORY_READ), req);
    assert_eq!(action, LayerAction::ReadReplyQueued { words: 3 });

    let replies = chip.pump_replies();
    assert_eq!(replies.len(), 1);
    let r = &replies[0];
    assert_eq!(&r[0..4], &0x40u32.to_be_bytes());
    assert_eq!(&r[4..8], &0x1111_1111u32.to_be_bytes());
    assert_eq!(&r[12..16], &0x3333_3333u32.to_be_bytes());
}

#[test]
fn chip_specific_fus_collect_in_mailboxes() {
    let mut chip = Chip::new();
    let action = chip.send(fu(0x9), vec![0xCA, 0xFE]);
    assert_eq!(action, LayerAction::Mailboxed { fu: 0x9 });
    chip.send(fu(0x9), vec![0x01]);
    let mail = chip.layer.take_mailbox(0x9);
    assert_eq!(mail, vec![vec![0xCA, 0xFE], vec![0x01]]);
}

#[test]
fn malformed_payloads_are_contained() {
    // A garbage register write must not corrupt state or wedge the bus.
    let mut chip = Chip::new();
    let action = chip.send(FuId::ZERO, vec![0x10, 0x01]); // ragged
    assert_eq!(action, LayerAction::Malformed);
    assert_eq!(chip.layer.register(0x10), 0);
    // The bus remains usable.
    let action = chip.send(FuId::ZERO, vec![0x10, 0x00, 0x00, 0x07]);
    assert_eq!(action, LayerAction::RegistersWritten { count: 1 });
    assert_eq!(chip.layer.register(0x10), 7);
}

#[test]
fn fu_ids_multiplex_one_physical_interface() {
    // §4.6: FU-IDs address chip sub-components behind a single MBus
    // frontend. Distinct FUs must not interfere.
    let mut chip = Chip::new();
    chip.send(FuId::ZERO, vec![0x01, 0x00, 0x00, 0xAA]);
    let mut mem = 0u32.to_be_bytes().to_vec();
    mem.extend(0xBBBB_BBBBu32.to_be_bytes());
    chip.send(fu(FU_MEMORY_WRITE), mem);
    chip.send(fu(0xF), vec![0xCC]);

    assert_eq!(chip.layer.register(0x01), 0xAA);
    assert_eq!(chip.layer.memory_word(0), Some(0xBBBB_BBBB));
    assert_eq!(chip.layer.take_mailbox(0xF), vec![vec![0xCC]]);
}
