//! Round-trip property suite for the `.mbt` trace format: for seeded
//! generator output, serialize → parse → re-run must yield the
//! identical [`ScenarioSignature`] / [`FleetSignature`] on every
//! comparable engine kind — the format loses nothing an engine can
//! observe. Walks ≥200 seeds per layer at the default
//! `MBUS_SEED_SCALE` (the weekly cron multiplies by 10).
//!
//! [`ScenarioSignature`]: mbus_core::scenario::ScenarioSignature
//! [`FleetSignature`]: mbus_core::FleetSignature

mod common;

use mbus_core::trace::{Trace, TraceFile};
use mbus_core::{FleetSchedule, FleetWorkload, Workload};

/// Serialize → parse, panicking with the full text on any failure so a
/// format regression is immediately reproducible.
fn reparse(tf: &TraceFile, what: &str) -> TraceFile {
    let text = tf.to_mbt();
    TraceFile::parse_str(what, &text)
        .unwrap_or_else(|e| panic!("{what} failed to re-parse: {e}\n--- trace ---\n{text}"))
}

#[test]
fn seeded_workloads_round_trip_on_every_engine() {
    for seed in 0..common::scaled_seeds(200) {
        let original = Workload::seeded(seed);
        let tf = reparse(
            &TraceFile::workload(original.clone()).with_seed(seed),
            &format!("seeded/{seed}"),
        );
        assert_eq!(tf.meta.seed, Some(seed));
        let Trace::Workload(parsed) = &tf.trace else {
            panic!("seed {seed}: workload came back as a fleet");
        };
        assert_eq!(parsed.name(), original.name(), "seed {seed}");
        assert_eq!(
            parsed.wire_comparable(),
            original.wire_comparable(),
            "seed {seed}"
        );
        for kind in common::comparable_kinds(&original) {
            assert_eq!(
                original.run_on(kind).signature(),
                parsed.run_on(kind).signature(),
                "seed {seed}: round-trip changed behavior on {kind}"
            );
        }
    }
}

#[test]
fn seeded_fleets_round_trip_on_every_engine() {
    for seed in 0..common::scaled_seeds(200) {
        let original = FleetWorkload::seeded(seed);
        let tf = reparse(
            &TraceFile::fleet(original.clone()).with_seed(seed),
            &format!("fleet_seeded/{seed}"),
        );
        let Trace::Fleet(parsed) = &tf.trace else {
            panic!("seed {seed}: fleet came back as a workload");
        };
        assert_eq!(
            parsed.cluster_specs(),
            original.cluster_specs(),
            "seed {seed}"
        );
        assert_eq!(
            parsed.strict_nulls(),
            original.strict_nulls(),
            "seed {seed}"
        );
        // The v2 constructs survive structurally, not just
        // behaviorally: behavior tables, mesh domains and routes, and
        // the reply horizon all come back token-identical.
        assert_eq!(parsed.behaviors(), original.behaviors(), "seed {seed}");
        assert_eq!(
            parsed.cluster_domains(),
            original.cluster_domains(),
            "seed {seed}"
        );
        assert_eq!(parsed.mesh_routes(), original.mesh_routes(), "seed {seed}");
        assert_eq!(
            parsed.reply_horizon(),
            original.reply_horizon(),
            "seed {seed}"
        );
        for kind in common::fleet_comparable_kinds(&original) {
            assert_eq!(
                original.run_on(kind).signature(),
                parsed.run_on(kind).signature(),
                "seed {seed}: round-trip changed behavior on {kind}"
            );
        }
    }
}

/// The 200-seed fleet battery actually covers the v2 step and
/// topology kinds it exists to round-trip: some seeds must draw
/// behavior tables, mesh routes (hence version-2 serialization), and
/// explicit-TTL remotes. A generator regression that stops producing
/// them would otherwise silently shrink this suite back to v1
/// coverage.
#[test]
fn seeded_fleet_battery_covers_the_v2_constructs() {
    let (mut behaviors, mut routes, mut ttls, mut v2) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..common::scaled_seeds(200) {
        let w = FleetWorkload::seeded(seed);
        behaviors += u64::from(!w.behaviors().is_empty());
        routes += u64::from(!w.mesh_routes().is_empty());
        let text = TraceFile::fleet(w).to_mbt();
        ttls += u64::from(text.contains(" ttl="));
        v2 += u64::from(text.starts_with("mbt 2 "));
    }
    let seeds = common::scaled_seeds(200);
    assert!(behaviors * 3 >= seeds, "behaviors: {behaviors}/{seeds}");
    assert!(routes * 8 >= seeds, "mesh routes: {routes}/{seeds}");
    assert!(ttls * 16 >= seeds, "explicit TTLs: {ttls}/{seeds}");
    assert!(v2 * 3 >= seeds, "v2 serializations: {v2}/{seeds}");
}

/// The parsed fleet honors the schedule-independence contract exactly
/// like the original (spot-checked on a slice of seeds: the full
/// schedule grid per seed is what `tests/corpus_replay.rs` pins for
/// the golden traces).
#[test]
fn reparsed_fleets_stay_schedule_independent() {
    for seed in 0..common::scaled_seeds(20) {
        let tf = reparse(
            &TraceFile::fleet(FleetWorkload::seeded(seed)),
            &format!("fleet_seeded/{seed}"),
        );
        let Trace::Fleet(parsed) = &tf.trace else {
            panic!("seed {seed}: fleet came back as a workload");
        };
        for kind in common::fleet_comparable_kinds(parsed) {
            let reference = parsed.run_scheduled_on(kind, FleetSchedule::Interleaved);
            common::schedule_crosscheck(parsed, kind);
            common::sharded_crosscheck(parsed, kind, &reference, 2);
        }
    }
}
