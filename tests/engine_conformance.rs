//! Trait-conformance suite: one battery of observable-behavior checks,
//! executed against every [`BusEngine`] implementation through
//! `Box<dyn BusEngine>`. Where the cross-check suite compares the two
//! engines against *each other*, this suite pins each engine to the
//! documented contract on its own.

use mbus_core::{
    build_engine, timing, Address, BusConfig, BusEngine, EngineKind, FuId, FullPrefix, MbusError,
    Message, NodeSpec, ShortPrefix, TxOutcome,
};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn addr(x: u8) -> Address {
    Address::short(sp(x), FuId::ZERO)
}

/// A fresh engine with a 3-node ring: mediator node, power-aware
/// sensor, power-aware radio.
fn engine_with_ring(kind: EngineKind) -> Box<dyn BusEngine> {
    let mut engine = build_engine(kind, BusConfig::default());
    engine.add_node(
        NodeSpec::new("cpu", FullPrefix::new(0x00001).unwrap()).with_short_prefix(sp(0x1)),
    );
    engine.add_node(
        NodeSpec::new("sensor", FullPrefix::new(0x00002).unwrap())
            .with_short_prefix(sp(0x2))
            .power_aware(true),
    );
    engine.add_node(
        NodeSpec::new("radio", FullPrefix::new(0x00003).unwrap())
            .with_short_prefix(sp(0x3))
            .power_aware(true),
    );
    engine
}

#[test]
fn kind_and_topology_accessors() {
    for kind in EngineKind::ALL {
        let mut engine = build_engine(kind, BusConfig::default());
        assert_eq!(engine.kind(), kind);
        assert_eq!(engine.node_count(), 0);
        let a = engine.add_node(NodeSpec::new("a", FullPrefix::new(0x1).unwrap()));
        let b = engine.add_node(NodeSpec::new("b", FullPrefix::new(0x2).unwrap()));
        assert_eq!((a, b), (0, 1), "{kind}: indices are sequential");
        assert_eq!(engine.node_count(), 2, "{kind}");
        assert_eq!(engine.spec(0).name(), "a", "{kind}");
        assert_eq!(engine.config().clock_hz(), 400_000, "{kind}");
    }
}

#[test]
fn idle_engine_runs_to_nothing() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        assert!(engine.run_transaction().is_none(), "{kind}");
        assert!(engine.run_until_quiescent().is_empty(), "{kind}");
        assert_eq!(engine.stats().transactions, 0, "{kind}");
    }
}

#[test]
fn unknown_node_is_rejected_everywhere() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        assert!(
            matches!(
                engine.queue(9, Message::new(addr(0x2), vec![])),
                Err(MbusError::UnknownNode { index: 9 })
            ),
            "{kind}: queue"
        );
        assert!(
            matches!(
                engine.queue_unchecked(7, Message::new(addr(0x2), vec![])),
                Err(MbusError::UnknownNode { index: 7 })
            ),
            "{kind}: queue_unchecked"
        );
        assert!(engine.request_wakeup(5).is_err(), "{kind}: wakeup");
    }
}

#[test]
fn oversized_messages_are_rejected_by_checked_queue() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        let oversized = Message::new(addr(0x2), vec![0; 2048]);
        assert!(
            matches!(
                engine.queue(0, oversized.clone()),
                Err(MbusError::MessageTooLong { .. })
            ),
            "{kind}"
        );
        // The unchecked path accepts it — and the mediator cuts it.
        engine.queue_unchecked(0, oversized).unwrap();
        let records = engine.run_until_quiescent();
        assert_eq!(records[0].outcome, TxOutcome::LengthEnforced, "{kind}");
    }
}

#[test]
fn queue_run_take_rx_roundtrip() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        let msg = Message::new(addr(0x2), vec![0xDE, 0xAD]);
        engine.queue(0, msg.clone()).unwrap();
        let record = engine.run_transaction().expect("one transaction");
        assert_eq!(record.seq, 0, "{kind}");
        assert_eq!(record.winner, Some(0), "{kind}");
        assert_eq!(record.delivered_to, vec![1], "{kind}");
        assert_eq!(record.outcome, TxOutcome::Acked, "{kind}");
        assert_eq!(
            record.cycles,
            timing::transaction_cycles(&msg) as u64,
            "{kind}"
        );
        let rx = engine.take_rx(1);
        assert_eq!(rx.len(), 1, "{kind}");
        assert_eq!(rx[0].from, 0, "{kind}");
        assert_eq!(rx[0].dest, addr(0x2), "{kind}");
        assert_eq!(rx[0].payload, vec![0xDE, 0xAD], "{kind}");
        assert!(engine.take_rx(1).is_empty(), "{kind}: take_rx drains");
        assert!(engine.run_transaction().is_none(), "{kind}: idle again");
    }
}

#[test]
fn records_are_sequential_across_run_calls() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        for k in 0..3u8 {
            engine.queue(0, Message::new(addr(0x3), vec![k])).unwrap();
        }
        let first = engine.run_transaction().unwrap();
        let rest = engine.run_until_quiescent();
        let mut seqs = vec![first.seq];
        seqs.extend(rest.iter().map(|r| r.seq));
        assert_eq!(seqs, vec![0, 1, 2], "{kind}");
        assert_eq!(engine.take_rx(2).len(), 3, "{kind}");
    }
}

#[test]
fn wakeup_produces_one_wake_event() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        engine.request_wakeup(2).unwrap();
        let records = engine.run_until_quiescent();
        assert_eq!(records.len(), 1, "{kind}");
        assert!(records[0].is_null(), "{kind}");
        assert_eq!(records[0].cycles, 11, "{kind}");
        assert_eq!(engine.wake_events(2), 1, "{kind}");
        assert_eq!(engine.wake_events(1), 0, "{kind}");
    }
}

#[test]
fn power_oblivious_delivery_and_regating() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        assert!(!engine.layer_on(1), "{kind}: power-aware node boots gated");
        assert!(engine.layer_on(0), "{kind}: plain node boots powered");
        engine
            .queue(0, Message::new(addr(0x2), vec![0x55]))
            .unwrap();
        engine.run_until_quiescent();
        assert_eq!(engine.take_rx(1).len(), 1, "{kind}: delivered while gated");
        assert!(
            !engine.layer_on(1),
            "{kind}: power-aware node re-gates after the transaction"
        );
        let stats = engine.stats();
        assert_eq!(stats.layer_wakes[1], 1, "{kind}: destination woke once");
        assert_eq!(stats.layer_wakes[2], 0, "{kind}: bystander stayed gated");
    }
}

#[test]
fn stats_accumulate_identically_shaped_activity() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        engine
            .queue(0, Message::new(addr(0x2), vec![0; 8]))
            .unwrap();
        engine.run_until_quiescent();
        let stats = engine.stats();
        let bits = (19 + 64) as u64;
        assert_eq!(stats.transactions, 1, "{kind}");
        assert_eq!(stats.busy_cycles, bits, "{kind}");
        assert_eq!(stats.tx_bits[0], bits, "{kind}");
        assert_eq!(stats.rx_bits[1], bits, "{kind}");
        assert_eq!(stats.fwd_bits[2], bits, "{kind}");
    }
}

/// A ring with an always-on contender and a power-gated one, in both
/// topological orders.
fn mixed_power_ring(kind: EngineKind, gated_first: bool) -> Box<dyn BusEngine> {
    let mut engine = build_engine(kind, BusConfig::default());
    engine.add_node(
        NodeSpec::new("med", FullPrefix::new(0x00001).unwrap()).with_short_prefix(sp(0x1)),
    );
    let (a, b) = if gated_first {
        (true, false)
    } else {
        (false, true)
    };
    engine.add_node(
        NodeSpec::new("n1", FullPrefix::new(0x00002).unwrap())
            .with_short_prefix(sp(0x2))
            .power_aware(a),
    );
    engine.add_node(
        NodeSpec::new("n2", FullPrefix::new(0x00003).unwrap())
            .with_short_prefix(sp(0x3))
            .power_aware(b),
    );
    engine
}

#[test]
fn priority_round_is_restricted_to_contenders() {
    // §4.3–4.4: a gated node's bus controller is still being woken by
    // the transaction's own arbitration edges, so a queued priority
    // message cannot claim a transaction the node never contended for.
    // Both engines must serve the awake contender first.
    for kind in EngineKind::ALL {
        let mut engine = mixed_power_ring(kind, false); // node 2 gated
        engine
            .queue(1, Message::new(addr(0x1), vec![0xAA]))
            .unwrap();
        engine
            .queue(2, Message::new(addr(0x1), vec![0xBB]).with_priority())
            .unwrap();
        let records = engine.run_until_quiescent();
        let winners: Vec<_> = records.iter().filter_map(|r| r.winner).collect();
        assert_eq!(winners, vec![1, 2], "{kind}");
    }
}

#[test]
fn sleeping_requester_cannot_win_plain_arbitration() {
    // The same rule for the plain round: topological priority only
    // applies among nodes that could actually assert a request.
    for kind in EngineKind::ALL {
        let mut engine = mixed_power_ring(kind, true); // node 1 gated
        engine
            .queue(1, Message::new(addr(0x1), vec![0x11]))
            .unwrap();
        engine
            .queue(2, Message::new(addr(0x1), vec![0x22]))
            .unwrap();
        let records = engine.run_until_quiescent();
        let winners: Vec<_> = records.iter().filter_map(|r| r.winner).collect();
        assert_eq!(winners, vec![2, 1], "{kind}");
    }
}

#[test]
fn null_transactions_charge_gated_bus_controllers_on_both_engines() {
    // §4.4: a null transaction's arbitration edges clock the ring like
    // any other transaction, so every gated bus controller — requester
    // and bystander alike — is woken (and charged) once. The engines
    // must account identically.
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind); // nodes 1 and 2 gated
        engine.request_wakeup(2).unwrap();
        let records = engine.run_until_quiescent();
        assert_eq!(records.len(), 1, "{kind}");
        assert!(records[0].is_null(), "{kind}");
        let stats = engine.stats();
        assert_eq!(
            stats.bus_ctl_wakes,
            vec![0, 1, 1],
            "{kind}: requester AND gated bystander each woke once"
        );
        assert_eq!(stats.layer_wakes, vec![0, 0, 1], "{kind}: requester only");
        assert_eq!(engine.wake_events(2), 1, "{kind}");
    }
}

#[test]
fn bus_ctl_wake_accounting_is_per_transaction_on_both_engines() {
    // Two back-to-back message transactions re-gate and re-wake a
    // power-aware bystander each time: one bus_ctl wake per
    // transaction, no layer wakes, on both engines.
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        engine
            .queue(0, Message::new(addr(0x2), vec![1, 2]))
            .unwrap();
        engine
            .queue(0, Message::new(addr(0x2), vec![3, 4]))
            .unwrap();
        let records = engine.run_until_quiescent();
        assert_eq!(records.len(), 2, "{kind}");
        let stats = engine.stats();
        assert_eq!(
            stats.bus_ctl_wakes,
            vec![0, 2, 2],
            "{kind}: every gated controller woken once per transaction"
        );
        assert_eq!(
            stats.layer_wakes,
            vec![0, 2, 0],
            "{kind}: only the destination's layer powers past the bus ctl"
        );
    }
}

#[test]
fn self_waking_node_still_receives_broadcasts() {
    // §4.4 power-oblivious delivery: a gated node whose self-wake rides
    // a broadcast transaction must still latch and deliver it — its bus
    // controller is awake by the addressing phase on both engines.
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        engine.request_wakeup(1).unwrap();
        engine
            .queue(
                0,
                Message::new(
                    Address::broadcast(mbus_core::BroadcastChannel::CONFIGURATION),
                    vec![0x77],
                ),
            )
            .unwrap();
        let records = engine.run_until_quiescent();
        assert_eq!(records.len(), 1, "{kind}: wake piggybacks, no null");
        assert_eq!(records[0].delivered_to, vec![1, 2], "{kind}");
        assert_eq!(engine.take_rx(1).len(), 1, "{kind}");
        assert_eq!(engine.wake_events(1), 1, "{kind}");
    }
}

#[test]
fn freeze_state_is_observable_before_add_node_panics() {
    // The `BusEngine::is_frozen` contract: true exactly when
    // `add_node` would panic, so schedulers check instead of catching
    // panics. Only the wire engine ever freezes (at its first
    // queue/wakeup/run); the analytic and event engines accept nodes
    // forever.
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        assert!(!engine.is_frozen(), "{kind}: fresh ring is open");
        engine
            .queue(0, Message::new(addr(0x2), vec![0x01]))
            .unwrap();
        engine.run_until_quiescent();
        if kind == EngineKind::Wire {
            assert!(engine.is_frozen(), "{kind}: traffic froze the ring");
            let mut frozen = engine;
            assert!(
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    frozen.add_node(NodeSpec::new("late", FullPrefix::new(0x9).unwrap()));
                }))
                .is_err(),
                "{kind}: is_frozen == true must mean add_node panics"
            );
        } else {
            assert!(!engine.is_frozen(), "{kind}: never freezes");
            let late = engine.add_node(NodeSpec::new("late", FullPrefix::new(0x9).unwrap()));
            assert_eq!(late, 3, "{kind}: late add still works");
        }
    }
}

#[test]
fn virtual_time_advances_monotonically() {
    for kind in EngineKind::ALL {
        let mut engine = engine_with_ring(kind);
        let t0 = engine.now();
        engine.queue(0, Message::new(addr(0x2), vec![1])).unwrap();
        engine.run_until_quiescent();
        let t1 = engine.now();
        assert!(t1 > t0, "{kind}: time moved across a transaction");
        engine.queue(0, Message::new(addr(0x2), vec![2])).unwrap();
        engine.run_until_quiescent();
        assert!(engine.now() > t1, "{kind}");
    }
}
