//! End-to-end system tests: the §6.3 microbenchmarks run on the
//! protocol engines, including a wire-level (edge-accurate) rendition
//! of the temperature system's transaction pattern.

use mbus_core::wire::WireBusBuilder;
use mbus_core::{
    enumeration, Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix,
};
use mbus_systems::imager::{self, ImagerSystem};
use mbus_systems::temperature::{Routing, SenseAndSendComparison, TemperatureSystem};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

#[test]
fn headline_sense_and_send_numbers() {
    let cmp = SenseAndSendComparison::run(3);
    assert!((cmp.direct.as_nj() - 100.0).abs() < 1.0);
    assert!((cmp.savings().as_nj() - 6.6).abs() < 0.1);
    assert!((cmp.via_days - 44.5).abs() < 0.5);
    assert!((cmp.direct_days - 47.5).abs() < 0.5);
}

#[test]
fn temperature_pattern_on_the_wire_engine() {
    // The same request/response/radio pattern, edge-accurate: the
    // processor asks the power-gated sensor for a reading; the sensor
    // replies directly to the power-gated radio.
    let mut bus = WireBusBuilder::new(BusConfig::default())
        .node(NodeSpec::new("cpu", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
        .node(
            NodeSpec::new("sensor", FullPrefix::new(0x2).unwrap())
                .with_short_prefix(sp(0x2))
                .power_aware(true),
        )
        .node(
            NodeSpec::new("radio", FullPrefix::new(0x3).unwrap())
                .with_short_prefix(sp(0x3))
                .power_aware(true),
        )
        .build();

    // Request: 4 bytes to the sensor.
    bus.queue(
        0,
        Message::new(Address::short(sp(0x2), FuId::ZERO), vec![0x51, 0x03, 0, 0]),
    )
    .unwrap();
    let r1 = bus.run_until_quiescent(50_000_000);
    assert_eq!(r1[0].cycles, 19 + 32);
    let req = bus.take_rx(1);
    assert_eq!(req.len(), 1);

    // Response: 8 bytes straight to the radio (any-to-any). The
    // power-gated sensor first self-wakes via a null transaction.
    let reading = vec![0, 1, 0x73, 0xAC, 0, 0, 0, 0];
    bus.queue(
        1,
        Message::new(Address::short(sp(0x3), FuId::ZERO), reading.clone()),
    )
    .unwrap();
    let r2 = bus.run_until_quiescent(50_000_000);
    assert_eq!(r2.last().unwrap().cycles, 19 + 64);
    assert_eq!(bus.take_rx(2)[0].payload, reading);
    // The CPU never saw the reading — no relay energy spent.
    assert!(bus.take_rx(0).is_empty());
    // Wire-level totals match §6.3.1's (64 + 19)-bit accounting for
    // the response message.
    let response_bits = 64 + 19;
    assert_eq!(r2.last().unwrap().cycles, response_bits);
}

#[test]
fn imager_flow_delivers_a_pixel_perfect_frame() {
    let mut sys = ImagerSystem::new();
    sys.motion_detected();
    let received = sys.transfer_row_by_row();
    assert_eq!(&received, sys.captured().unwrap());
    assert_eq!(sys.motion_events, 1);
}

#[test]
fn imager_rows_on_the_wire_engine() {
    // A scaled-down wire-level version: four rows of the real image
    // cross the edge-accurate ring intact.
    let image = imager::Image::synthetic(99);
    let mut bus = WireBusBuilder::new(BusConfig::default())
        .node(NodeSpec::new("cpu", FullPrefix::new(0x11).unwrap()).with_short_prefix(sp(0x1)))
        .node(NodeSpec::new("imager", FullPrefix::new(0x12).unwrap()).with_short_prefix(sp(0x2)))
        .node(NodeSpec::new("radio", FullPrefix::new(0x13).unwrap()).with_short_prefix(sp(0x3)))
        .build();
    for y in 0..4 {
        let row = image.pack_row(y);
        assert_eq!(row.len(), 180);
        bus.queue(1, Message::new(Address::short(sp(0x3), FuId::ZERO), row))
            .unwrap();
    }
    let records = bus.run_until_quiescent(200_000_000);
    assert_eq!(records.len(), 4);
    for r in &records {
        assert_eq!(r.cycles, 19 + 8 * 180, "row message cycle budget");
    }
    let rx = bus.take_rx(2);
    for (y, m) in rx.iter().enumerate() {
        let pixels = imager::Image::unpack_row(&m.payload);
        for (x, &p) in pixels.iter().enumerate() {
            assert_eq!(p, image.pixel(x, y));
        }
    }
}

#[test]
fn enumeration_then_traffic_end_to_end() {
    // Boot a 5-chip system with no static prefixes, enumerate, then
    // exchange messages using the assigned prefixes.
    let mut bus = AnalyticBus::new(BusConfig::default());
    for i in 0..5 {
        bus.add_node(NodeSpec::new(
            format!("chip{i}"),
            FullPrefix::new(0x700 + i).unwrap(),
        ));
    }
    let assignments = enumeration::enumerate(&mut bus, 0).unwrap();
    assert_eq!(assignments.len(), 5);
    // Drain the enumeration broadcasts every node overheard.
    for i in 0..5 {
        let _ = bus.take_rx(i);
    }

    // Use the freshly assigned prefix of node 3 to reach it.
    let dest = Address::short(assignments[3].prefix, FuId::ZERO);
    bus.queue(0, Message::new(dest, vec![0xCA, 0xFE])).unwrap();
    bus.run_transaction().unwrap();
    let rx = bus.take_rx(3);
    assert_eq!(rx.len(), 1);
    assert_eq!(rx[0].payload, vec![0xCA, 0xFE]);
}

#[test]
fn sample_period_is_respected() {
    let mut sys = TemperatureSystem::new(Routing::Direct);
    sys.run_events(4);
    // Four 15 s periods elapsed.
    let elapsed = sys.bus().now().as_secs_f64();
    assert!((elapsed - 60.0).abs() < 0.1, "{elapsed}");
}

#[test]
fn imager_single_vs_rows_tradeoff() {
    // One message saves 3,021 bits of overhead but locks the bus for
    // the whole frame; rows cost 1.31 % more and interleave. Both are
    // lossless; the analysis quantifies the tradeoff.
    let mut single = ImagerSystem::new();
    single.motion_detected();
    single.transfer_single_message();
    let single_cycles = single.bus().stats().busy_cycles;

    let mut rows = ImagerSystem::new();
    rows.motion_detected();
    rows.transfer_row_by_row();
    let rows_cycles = rows.bus().stats().busy_cycles;

    assert_eq!(rows_cycles - single_cycles, 3_021, "the paper's extra bits");
}
