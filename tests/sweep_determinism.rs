//! `SweepRunner` determinism: sharding a sweep across threads must be
//! observationally invisible — the output vector is bit-identical to
//! the serial run, with real engines built and run inside the workers.

use mbus_core::{EngineKind, SweepRunner, Workload};

/// A digest of one sweep point's full scenario outcome.
fn storm_digest(nodes: usize, rounds: usize, kind: EngineKind) -> (usize, u64, usize, Vec<u64>) {
    let report = Workload::many_node_storm(nodes, rounds).run_on(kind);
    (
        report.records.len(),
        report.total_cycles(),
        report.delivered_messages(),
        report.stats.tx_bits.clone(),
    )
}

#[test]
fn analytic_sweep_is_identical_serial_and_parallel() {
    let points: Vec<(usize, usize)> = (2..=10).flat_map(|n| [(n, 1), (n, 3)]).collect();
    let f = |&(n, r): &(usize, usize)| storm_digest(n, r, EngineKind::Analytic);
    let serial = SweepRunner::serial().run(&points, f);
    for threads in [2, 4, 7] {
        let sharded = SweepRunner::with_threads(threads).run(&points, f);
        assert_eq!(serial, sharded, "{threads} threads");
    }
    let auto = SweepRunner::auto().run(&points, f);
    assert_eq!(serial, auto, "auto-sized runner");
}

#[test]
fn wire_sweep_is_identical_serial_and_parallel() {
    // Each worker thread builds its own wire-level circuit per point —
    // the engine's Rc-based internals never cross a thread boundary.
    // The wavefront fast path makes ring sizes up to the paper's
    // ten-chip stack (§6) affordable here; these points were capped at
    // 5 when every CLK hop paid a heap sift.
    let points: Vec<usize> = (2..=10).collect();
    let f = |&n: &usize| storm_digest(n, 1, EngineKind::Wire);
    let serial = SweepRunner::serial().run(&points, f);
    let sharded = SweepRunner::with_threads(4).run(&points, f);
    assert_eq!(serial, sharded);
}

#[test]
fn cross_engine_agreement_holds_inside_sweep_workers() {
    // Run the cross-check itself as the sweep body: every point builds
    // both engines in the worker and compares signatures there.
    let points: Vec<usize> = (2..=10).collect();
    let agree = SweepRunner::with_threads(3).run(&points, |&n| {
        let w = Workload::many_node_storm(n, 2);
        w.run_on(EngineKind::Analytic).signature() == w.run_on(EngineKind::Wire).signature()
    });
    assert!(agree.iter().all(|&ok| ok));
}
