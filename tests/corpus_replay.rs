//! Golden-corpus regression suite: every `.mbt` trace committed under
//! `tests/corpus/` must replay to the identical signature across every
//! comparable engine kind and every fleet schedule, AND match the
//! digest its `expect sig=` header pinned when the trace was exported.
//!
//! This is the durable, diffable form of the conformance batteries:
//! the traces survive refactors of the generators that produced them
//! (`cargo run -p mbus-bench --bin scenario -- export <builtin> --pin`
//! regenerates one deliberately). A digest mismatch here means
//! observable protocol behavior changed — bump the pin only with a
//! changelog entry explaining why.

mod common;

use mbus_core::trace::{fleet_digest, scenario_digest, Trace, TraceFile};
use mbus_core::EngineKind;

/// Every committed corpus trace, parsed — fails loudly if the
/// directory is missing or any trace no longer parses.
fn corpus() -> Vec<(String, TraceFile)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "mbt"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 10,
        "corpus unexpectedly small: {entries:?} — traces deleted without replacement?"
    );
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let tf = TraceFile::parse_file(&path).unwrap_or_else(|e| panic!("{e}"));
            (name, tf)
        })
        .collect()
}

/// The tier-1 acceptance gate: identical signatures across
/// Analytic/Event/Wire × batched/interleaved/sharded, pinned digests
/// intact.
#[test]
fn corpus_replays_identically_across_engines_and_schedules() {
    for (file, tf) in corpus() {
        let pinned = tf
            .meta
            .expect_sig
            .unwrap_or_else(|| panic!("{file}: corpus traces must pin `expect sig=`"));
        match &tf.trace {
            Trace::Workload(w) => {
                // Cross-engine signature identity (the helper asserts).
                let reports = common::crosscheck_all_engines(w);
                let digest = scenario_digest(&reports[0].signature());
                assert_eq!(
                    digest, pinned,
                    "{file}: behavior drifted from pinned digest (got {digest:016x})"
                );
            }
            Trace::Fleet(w) => {
                // Cross-engine identity on the batched schedule...
                let reports = common::fleet_crosscheck_all_engines(w);
                let digest = fleet_digest(&reports[0].signature());
                assert_eq!(
                    digest, pinned,
                    "{file}: behavior drifted from pinned digest (got {digest:016x})"
                );
                // ...then schedule-independence per comparable kind:
                // batched ≡ interleaved ≡ sharded(2|3), measured and
                // static balance both.
                for kind in common::fleet_comparable_kinds(w) {
                    let (_, interleaved) = common::schedule_crosscheck(w, kind);
                    for shards in [2, 3] {
                        common::sharded_crosscheck(w, kind, &interleaved, shards);
                    }
                }
            }
        }
    }
}

/// Round-tripping a corpus trace through serialize → parse preserves
/// behavior — the committed bytes aren't load-bearing beyond what the
/// grammar captures.
#[test]
fn corpus_survives_reserialization() {
    for (file, tf) in corpus() {
        let text = tf.to_mbt();
        let reparsed =
            TraceFile::parse_str(&file, &text).unwrap_or_else(|e| panic!("{file} re-parse: {e}"));
        assert_eq!(reparsed.meta.expect_sig, tf.meta.expect_sig, "{file}");
        let digest = |t: &Trace| match t {
            Trace::Workload(w) => scenario_digest(&w.run_on(EngineKind::Analytic).signature()),
            Trace::Fleet(w) => fleet_digest(&w.run_on(EngineKind::Analytic).signature()),
        };
        assert_eq!(digest(&reparsed.trace), digest(&tf.trace), "{file}");
    }
}

/// The corpus spans the shapes the suite exists to guard: single-bus
/// and fleet traces, partial drains (wire-incomparable), priority
/// remotes, gateway drops, and — since the closed-loop golden traces
/// landed — reactive behavior tables and multi-hop mesh routes at
/// 1000+ bus scale.
#[test]
fn corpus_covers_the_advertised_shapes() {
    let corpus = corpus();
    let fleets = corpus.iter().filter(|(_, t)| t.trace.is_fleet()).count();
    let workloads = corpus.len() - fleets;
    assert!(fleets >= 6, "fleet coverage shrank");
    assert!(workloads >= 4, "single-bus coverage shrank");
    assert!(
        corpus.iter().any(|(_, t)| !t.trace.wire_comparable()),
        "no partial-drain trace left in the corpus"
    );
    // The PR 5 aliasing-regression trace must keep exercising drops.
    let (_, gateway) = corpus
        .iter()
        .find(|(f, _)| f == "gateway_forwarding.mbt")
        .expect("gateway_forwarding.mbt present");
    let Trace::Fleet(w) = &gateway.trace else {
        panic!("gateway_forwarding.mbt must be a fleet trace");
    };
    let report = w.run_on(EngineKind::Analytic);
    assert!(report.forwarded >= 3, "forwarding legs disappeared");
    assert!(report.dropped >= 1, "unroutable-envelope drop disappeared");
}

/// The three closed-loop golden traces keep their advertised shapes:
/// 1000+ bridged buses, a non-empty behavior table, a mesh with routes
/// in both domains, and reply traffic that actually crosses the
/// inter-gateway boundary. The duty-cycled request/response day is the
/// acceptance scenario — its reply traffic (each injected reply is one
/// source transmission plus one forwarded delivery leg) must stay at
/// least 30% of all bus transactions.
#[test]
fn closed_loop_golden_traces_keep_their_shapes() {
    let corpus = corpus();
    let fleet = |file: &str| {
        let (_, tf) = corpus
            .iter()
            .find(|(f, _)| f == file)
            .unwrap_or_else(|| panic!("{file} present"));
        match &tf.trace {
            Trace::Fleet(w) => w,
            Trace::Workload(_) => panic!("{file} must be a fleet trace"),
        }
    };
    for file in [
        "duty_cycle_day.mbt",
        "alarm_cascade.mbt",
        "aggregate_fanin.mbt",
    ] {
        let w = fleet(file);
        assert!(
            w.cluster_specs().len() >= 1000,
            "{file}: fleet shrank below 1000 buses"
        );
        assert!(!w.behaviors().is_empty(), "{file}: behavior table emptied");
        assert!(
            w.mesh_routes().len() >= 2,
            "{file}: mesh routes disappeared"
        );
        let report = w.run_on(EngineKind::Analytic);
        assert!(
            report.injected_replies > 0,
            "{file}: no closed-loop replies"
        );
        assert!(
            report.hop_forwards > 0,
            "{file}: reply traffic no longer crosses the mesh"
        );
    }
    let report = fleet("duty_cycle_day.mbt").run_on(EngineKind::Analytic);
    let transactions = report.transactions() as u64;
    assert!(
        10 * 2 * report.injected_replies >= 3 * transactions,
        "duty_cycle_day.mbt: reply share fell below 30% ({} replies / {} transactions)",
        report.injected_replies,
        transactions
    );
}
