//! Fault injection: §3 requires that "it must be impossible for the bus
//! to enter a 'locked-up' state due to any transient faults". These
//! tests throw pathological workloads at both engines and verify the
//! bus always returns to idle with sane bookkeeping.

use mbus_core::interject::InterjectionDetector;
use mbus_core::wire::WireBusBuilder;
use mbus_core::{
    Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec, ShortPrefix, TxOutcome,
};
use mbus_sim::Edge;

const MAX_EVENTS: u64 = 80_000_000;

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn addr(x: u8) -> Address {
    Address::short(sp(x), FuId::ZERO)
}

fn wire_bus(n: usize) -> mbus_core::wire::WireBus {
    let mut b = WireBusBuilder::new(BusConfig::default());
    for i in 0..n {
        b = b.node(
            NodeSpec::new(format!("n{i}"), FullPrefix::new(0x600 + i as u32).unwrap())
                .with_short_prefix(sp((i + 1) as u8)),
        );
    }
    b.build()
}

#[test]
fn runaway_transmitter_cannot_hold_the_bus() {
    // A node streams an unbounded message; the mediator must cut it
    // and the bus must be usable immediately afterwards.
    let mut bus = wire_bus(3);
    bus.queue_unchecked(1, Message::new(addr(0x3), vec![0xFF; 4000]))
        .unwrap();
    let records = bus.run_until_quiescent(MAX_EVENTS);
    assert!(records[0].runaway);
    // Bus still works.
    bus.queue(0, Message::new(addr(0x2), vec![0x01])).unwrap();
    let records = bus.run_until_quiescent(MAX_EVENTS);
    assert_eq!(records.len(), 1);
    assert!(records[0].control.unwrap().is_acked());
    assert_eq!(bus.take_rx(1).len(), 1);
}

#[test]
fn overrun_receiver_does_not_wedge_the_transmitter() {
    let mut bus = WireBusBuilder::new(BusConfig::default())
        .node(NodeSpec::new("a", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
        .node(
            NodeSpec::new("tiny", FullPrefix::new(0x2).unwrap())
                .with_short_prefix(sp(0x2))
                .with_rx_buffer(4),
        )
        .build();
    bus.queue(0, Message::new(addr(0x2), vec![0; 32])).unwrap();
    bus.run_until_quiescent(MAX_EVENTS);
    assert_eq!(bus.take_outcomes(0), vec![TxOutcome::ReceiverAbort]);
    // A message that fits still goes through.
    bus.queue(0, Message::new(addr(0x2), vec![1, 2, 3, 4]))
        .unwrap();
    bus.run_until_quiescent(MAX_EVENTS);
    assert_eq!(bus.take_rx(1).len(), 1);
}

#[test]
fn wakeup_storm_resolves_to_a_single_null_transaction() {
    // Every node asserts its interrupt port at once.
    let mut bus = wire_bus(5);
    for i in 0..5 {
        bus.request_wakeup(i).unwrap();
    }
    let records = bus.run_until_quiescent(MAX_EVENTS);
    assert_eq!(records.len(), 1, "one null transaction serves them all");
    assert!(records[0].null_transaction);
    for i in 0..5 {
        assert_eq!(bus.wake_events(i), 1, "node {i} woke");
    }
}

#[test]
fn contention_storm_drains_fairly_by_topology() {
    let mut bus = wire_bus(6);
    for round in 0..3u8 {
        for node in 1..6usize {
            bus.queue(node, Message::new(addr(0x1), vec![round, node as u8]))
                .unwrap();
        }
    }
    let records = bus.run_until_quiescent(MAX_EVENTS);
    assert_eq!(records.len(), 15);
    let rx = bus.take_rx(0);
    assert_eq!(rx.len(), 15);
    // No message lost or duplicated.
    let mut seen: Vec<(u8, u8)> = rx.iter().map(|m| (m.payload[0], m.payload[1])).collect();
    seen.sort_unstable();
    let mut expect: Vec<(u8, u8)> = (0..3u8)
        .flat_map(|r| (1..6u8).map(move |n| (r, n)))
        .collect();
    expect.sort_unstable();
    assert_eq!(seen, expect);
}

#[test]
fn message_to_nobody_still_frees_the_bus() {
    let mut bus = wire_bus(2);
    bus.queue(0, Message::new(addr(0xD), vec![0; 8])).unwrap();
    let records = bus.run_until_quiescent(MAX_EVENTS);
    assert_eq!(records.len(), 1);
    assert_eq!(bus.take_outcomes(0), vec![TxOutcome::Nacked]);
    // Next message delivers fine.
    bus.queue(0, Message::new(addr(0x2), vec![7])).unwrap();
    bus.run_until_quiescent(MAX_EVENTS);
    assert_eq!(bus.take_rx(1).len(), 1);
}

#[test]
fn mixed_failure_workload_never_locks_up() {
    let mut bus = WireBusBuilder::new(BusConfig::default())
        .node(NodeSpec::new("a", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
        .node(
            NodeSpec::new("b", FullPrefix::new(0x2).unwrap())
                .with_short_prefix(sp(0x2))
                .with_rx_buffer(8),
        )
        .node(NodeSpec::new("c", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
        .build();
    // Interleave: good message, overrun, no-destination, runaway, wake.
    bus.queue(0, Message::new(addr(0x3), vec![1])).unwrap();
    bus.queue(0, Message::new(addr(0x2), vec![0; 64])).unwrap(); // overrun
    bus.queue(2, Message::new(addr(0xE), vec![2])).unwrap(); // nobody
    bus.queue_unchecked(0, Message::new(addr(0x3), vec![0; 2000]))
        .unwrap(); // runaway
    bus.request_wakeup(1).unwrap();
    bus.queue(2, Message::new(addr(0x1), vec![3])).unwrap(); // good

    let records = bus.run_until_quiescent(MAX_EVENTS);
    assert!(records.len() >= 5, "{} transactions", records.len());
    // The two good messages arrived.
    assert!(bus.take_rx(2).iter().any(|m| m.payload == vec![1]));
    assert!(bus.take_rx(0).iter().any(|m| m.payload == vec![3]));
}

#[test]
fn analytic_engine_survives_the_same_mixed_workload() {
    let mut bus = AnalyticBus::new(BusConfig::default());
    bus.add_node(NodeSpec::new("a", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)));
    bus.add_node(
        NodeSpec::new("b", FullPrefix::new(0x2).unwrap())
            .with_short_prefix(sp(0x2))
            .with_rx_buffer(8),
    );
    bus.add_node(NodeSpec::new("c", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)));

    bus.queue(0, Message::new(addr(0x3), vec![1])).unwrap();
    bus.queue(0, Message::new(addr(0x2), vec![0; 64])).unwrap();
    bus.queue(2, Message::new(addr(0xE), vec![2])).unwrap();
    bus.queue_unchecked(0, Message::new(addr(0x3), vec![0; 2000]))
        .unwrap();
    bus.request_wakeup(1).unwrap();
    bus.queue(2, Message::new(addr(0x1), vec![3])).unwrap();

    let records = bus.run_until_quiescent();
    assert!(records.len() >= 5);
    let outcomes: Vec<TxOutcome> = records.iter().map(|r| r.outcome).collect();
    assert!(outcomes.contains(&TxOutcome::Acked));
    assert!(outcomes.contains(&TxOutcome::ReceiverAbort));
    assert!(outcomes.contains(&TxOutcome::LengthEnforced));
    assert!(bus.run_transaction().is_none(), "bus fully idle afterwards");
}

#[test]
fn detector_tolerates_glitch_bursts_during_normal_traffic() {
    // Two DATA edges between clock edges (the §4.3 hand-off glitch
    // case) must never assert the detector; three must.
    let mut det = InterjectionDetector::new();
    for _ in 0..1_000 {
        det.on_data_edge(Edge::Falling);
        det.on_data_edge(Edge::Rising);
        det.on_clk_edge(Edge::Rising);
        assert!(!det.is_asserted());
    }
    det.on_data_edge(Edge::Falling);
    det.on_data_edge(Edge::Rising);
    det.on_data_edge(Edge::Falling);
    assert!(det.is_asserted());
}

#[test]
fn zero_length_flood_terminates() {
    let mut bus = wire_bus(3);
    for _ in 0..20 {
        bus.queue(0, Message::new(addr(0x2), vec![])).unwrap();
    }
    let records = bus.run_until_quiescent(MAX_EVENTS);
    assert_eq!(records.len(), 20);
    assert!(records.iter().all(|r| r.cycles == 19));
    assert_eq!(bus.take_rx(1).len(), 20);
}
