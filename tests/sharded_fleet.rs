//! Sharded-fleet conformance: the multi-threaded sharded drain
//! ([`ShardedFleet`]) must be **bit-identical** to the single-threaded
//! interleaved drain — full fleet-wide record stream, per-cluster
//! [`FleetSignature`] content (records, deliveries, wake accounting),
//! and merged gateway counters (forwarded, dropped, per-cluster drop
//! attribution) — for every engine kind and every shard count.
//!
//! The equivalence argument lives in `mbus_core::fleet::shard`'s
//! module docs: workers issue each cluster the same autonomous-drain
//! call sequence the single-threaded scheduler would, a cluster's
//! `j`-th transaction of an epoch always lands in round `j`, so the
//! barrier's `(round, cluster)` merge reproduces the round-robin
//! order, and the per-shard gateway counters are sums that merge
//! order-independently. This suite pins all of it over hundreds of
//! seeded fleets (which include unroutable envelopes and mid-epoch
//! partial drains) at shard counts {1, 2, 4, 7} — spanning one-worker
//! degeneration, even splits, ragged splits, and more workers than
//! clusters.
//!
//! [`FleetSignature`]: mbus_core::FleetSignature
//! [`ShardedFleet`]: mbus_core::ShardedFleet

mod common;

use mbus_core::fleet::{Fleet, FleetNodeId, GatewayNode, ShardedFleet, GATEWAY_NODE};
use mbus_core::{
    Address, BusConfig, EngineKind, EngineRecord, FleetRecord, FleetRecordSink, FleetSchedule,
    FleetWorkload, FuId, FullPrefix, Message, ShardBalance, ShortPrefix,
};

/// The acceptance-bar shard counts: degenerate, even, ragged, and
/// larger than most seeded fleets' cluster counts.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

#[test]
fn seeded_fleets_shard_equivalently_over_200_seeds() {
    // The kernel-sharing kinds over the full seed battery: for each
    // seed, the single-threaded interleaved drain is the reference and
    // every shard count must reproduce it bit for bit.
    for seed in 0..common::scaled_seeds(200) {
        let w = FleetWorkload::seeded(seed);
        for kind in [EngineKind::Analytic, EngineKind::Event] {
            let reference = w.run_scheduled_on(kind, FleetSchedule::Interleaved);
            for shards in SHARD_COUNTS {
                common::sharded_crosscheck(&w, kind, &reference, shards);
            }
        }
    }
}

#[test]
fn seeded_fleets_shard_equivalently_on_the_wire_engine() {
    // The edge-accurate engine over the same 200-seed battery.
    // Sharded-vs-interleaved is a *same-kind* comparison, so even
    // seeds with partial drains (not wire-comparable across kinds)
    // must agree here: every schedule issues the identical per-cluster
    // call sequence.
    for seed in 0..common::scaled_seeds(200) {
        let w = FleetWorkload::seeded(seed);
        let reference = w.run_scheduled_on(EngineKind::Wire, FleetSchedule::Interleaved);
        for shards in SHARD_COUNTS {
            common::sharded_crosscheck(&w, EngineKind::Wire, &reference, shards);
        }
    }
}

#[test]
fn partial_drains_preserve_schedule_independence() {
    // The satellite pin: batched ≡ interleaved ≡ sharded still holds
    // when the workload stops mid-epoch and queues into part-drained
    // buses (FleetStep::RunRounds) — each cluster runs exactly
    // min(rounds, pending) transactions under every schedule.
    let mut w = FleetWorkload::new("partial/handmade", BusConfig::default())
        .cluster(vec![false, false])
        .cluster(vec![false, false])
        .cluster(vec![false]);
    let dst = FleetNodeId::new(2, 1);
    for c in 0..2 {
        for j in 1..=2 {
            w = w.send_remote(
                FleetNodeId::new(c, j),
                dst,
                FuId::ZERO,
                vec![c as u8, j as u8],
            );
        }
    }
    // Stop after one round, then pile more traffic onto half-drained
    // buses before the full drain.
    w = w.drain_rounds(1);
    for c in 0..2 {
        w = w.send_remote(FleetNodeId::new(c, 1), dst, FuId::ZERO, vec![0xEE, c as u8]);
    }
    assert!(!w.wire_comparable(), "partial drains gate wire cross-kind");

    for kind in EngineKind::ALL {
        let batched = w.run_scheduled_on(kind, FleetSchedule::Batched);
        let interleaved = w.run_scheduled_on(kind, FleetSchedule::Interleaved);
        assert_eq!(batched.signature(), interleaved.signature(), "{kind}");
        for shards in SHARD_COUNTS {
            common::sharded_crosscheck(&w, kind, &interleaved, shards);
        }
    }
}

#[test]
fn sharded_gateway_drops_attribute_to_the_receiving_cluster() {
    // Unroutable envelopes queued on different clusters: the merged
    // per-cluster drop counters must attribute each drop to the bus
    // whose gateway presence received it, identically at every shard
    // count.
    for kind in EngineKind::ALL {
        let mut reports = Vec::new();
        for &shards in &[0usize, 2, 7] {
            let mut fleet = Fleet::new(kind, BusConfig::default());
            for _ in 0..4 {
                let c = fleet.add_cluster();
                fleet.add_sensor(c, false);
            }
            let port = Address::short(ShortPrefix::new(0x1).unwrap(), FuId::ZERO);
            for c in [0usize, 2, 2] {
                let envelope = GatewayNode::encapsulate(
                    FullPrefix::new(0x8BAD0 + c as u32).unwrap(),
                    FuId::ZERO,
                    &[c as u8],
                );
                fleet
                    .queue(FleetNodeId::new(c, 1), Message::new(port, envelope))
                    .unwrap();
            }
            if shards == 0 {
                fleet.run_until_quiescent_interleaved();
            } else {
                fleet.run_until_quiescent_sharded(shards);
            }
            reports.push((
                fleet.gateway().forwarded(),
                fleet.gateway().dropped(),
                (0..4)
                    .map(|c| fleet.gateway().dropped_on(c))
                    .collect::<Vec<_>>(),
            ));
        }
        for r in &reports[1..] {
            assert_eq!(&reports[0], r, "{kind}");
        }
        assert_eq!(reports[0].1, 3, "{kind}: all three envelopes dropped");
        assert_eq!(
            reports[0].2,
            vec![1, 0, 2, 0],
            "{kind}: attributed per cluster"
        );
    }
}

#[test]
fn wide_fleet_shards_with_ragged_and_oversized_counts() {
    // 32 clusters / 96 nodes: even splits, ragged splits (5 workers x
    // 7-cluster chunks), and more workers than clusters all reproduce
    // the single-threaded stream.
    let w = FleetWorkload::sense_and_aggregate(32, 2, 2);
    let reference = w.run_scheduled_on(EngineKind::Event, FleetSchedule::Interleaved);
    assert!(reference.total_nodes() > 90);
    for shards in [2usize, 5, 8, 32, 64] {
        common::sharded_crosscheck(&w, EngineKind::Event, &reference, shards);
    }
}

#[test]
fn sharded_fairness_counters_are_consistent() {
    // The fairness report: per-cluster transaction totals must equal
    // the record stream's per-cluster counts (schedule-independent),
    // and the round-robin starvation gauge is bounded by the widest
    // shard's simultaneously active cluster count.
    let w = FleetWorkload::cross_storm(6, 2, 3);
    for shards in [1usize, 3] {
        let report = w.run_scheduled_on(EngineKind::Event, FleetSchedule::Sharded { shards });
        let fairness = report.fairness.as_ref().expect("sharded drains report");
        for c in 0..6 {
            let counted = report.records.iter().filter(|r| r.cluster == c).count() as u64;
            assert_eq!(
                fairness.cluster_transactions[c], counted,
                "shards={shards} cluster {c}"
            );
        }
        let widest_shard = 6usize.div_ceil(shards) as u64;
        assert!(
            fairness.max_turn_gap < widest_shard,
            "shards={shards}: gap {} vs shard width {widest_shard}",
            fairness.max_turn_gap
        );
        assert!(fairness.epochs > 0, "shards={shards}");
        assert!(
            fairness.max_cluster_epoch_transactions >= 1,
            "shards={shards}"
        );
    }
}

#[test]
fn rebalance_schedules_produce_identical_merged_streams() {
    // The tentpole pin, rebalancing axis: every balance policy —
    // rebalance every epoch, every third epoch, never (static), and
    // the per-epoch-spawn baseline — yields the identical merged
    // stream and signature on every engine kind and shard count,
    // including more shards than clusters.
    let w = FleetWorkload::cross_storm(7, 2, 2);
    for kind in EngineKind::ALL {
        let reference = w.run_scheduled_on(kind, FleetSchedule::Interleaved);
        for shards in [2usize, 4, 7, 13] {
            for balance in [
                ShardBalance::Measured { every_epochs: 1 },
                ShardBalance::Measured { every_epochs: 3 },
                ShardBalance::Static,
            ] {
                let mut sharded = ShardedFleet::with_balance(shards, balance);
                let report = w.run_sharded_on(kind, &mut sharded);
                assert_eq!(
                    reference.records, report.records,
                    "{kind} shards={shards} balance={balance}"
                );
                assert_eq!(
                    reference.signature(),
                    report.signature(),
                    "{kind} shards={shards} balance={balance}"
                );
            }
            let mut spawned = ShardedFleet::per_epoch_spawn(shards);
            let report = w.run_sharded_on(kind, &mut spawned);
            assert_eq!(
                reference.records, report.records,
                "{kind} shards={shards} per-epoch spawn"
            );
        }
    }
}

#[test]
fn hot_cluster_earns_a_dedicated_shard() {
    // sense_and_aggregate funnels every reading to cluster 0, whose
    // forwarded legs make it the dominant load. Measured balancing
    // must (a) keep the stream bit-identical anyway and (b) end up
    // isolating the hot cluster on its own shard once its weight
    // dwarfs the rest.
    let w = FleetWorkload::sense_and_aggregate(9, 3, 3);
    let reference = w.run_scheduled_on(EngineKind::Event, FleetSchedule::Interleaved);
    let weights = &reference.fairness.as_ref().unwrap().cluster_transactions;
    assert!(
        weights[1..].iter().all(|&w| weights[0] > 3 * w),
        "cluster 0 is the clear hot spot: {weights:?}"
    );
    for shards in [2usize, 3, 4] {
        let mut sharded = ShardedFleet::new(shards);
        // Two drives: the first accumulates the true per-cluster
        // weights, so the second's rebalances see the hot cluster at
        // full strength.
        let report1 = w.run_sharded_on(EngineKind::Event, &mut sharded);
        assert_eq!(reference.records, report1.records, "shards={shards}");
        let report2 = w.run_sharded_on(EngineKind::Event, &mut sharded);
        assert_eq!(reference.records, report2.records, "shards={shards}");
        let home = sharded
            .shard_assignment()
            .iter()
            .find(|members| members.contains(&0))
            .expect("cluster 0 is assigned");
        if shards >= 3 {
            // With the hot cluster ~4x any peer, the greedy packer
            // places it first and never tops up its shard while two or
            // more other shards stay lighter.
            assert_eq!(
                home,
                &vec![0],
                "shards={shards}: the hot aggregation cluster is isolated"
            );
        }
        let fairness = report2.fairness.as_ref().expect("sharded drains report");
        assert_eq!(fairness.shard_transactions.len(), shards);
        assert_eq!(
            fairness.shard_transactions.iter().sum::<u64>(),
            sharded.transactions(),
            "per-shard gauges cover every transaction"
        );
    }
}

/// One per-shard batch as streamed: `(epoch, shard, rows)`.
type ShardBatch = (u64, usize, Vec<(u64, usize, EngineRecord)>);

/// Collects everything the streaming interface emits.
#[derive(Default)]
struct CollectSink {
    merged: Vec<FleetRecord>,
    batches: Vec<ShardBatch>,
    completed: Vec<u64>,
}

impl FleetRecordSink for CollectSink {
    fn record(&mut self, record: FleetRecord) {
        self.merged.push(record);
    }
    fn shard_records(&mut self, epoch: u64, shard: usize, records: &[(u64, usize, EngineRecord)]) {
        self.batches.push((epoch, shard, records.to_vec()));
    }
    fn epoch_complete(&mut self, epochs: u64) {
        self.completed.push(epochs);
    }
}

#[test]
fn streamed_shard_batches_reassemble_into_the_merged_stream() {
    // The per-shard batches arrive in (nondeterministic) completion
    // order, but each is internally sorted by the (round, cluster)
    // merge key — so sorting each epoch's batches together must
    // reproduce the conformance-pinned merged stream exactly.
    let mut fleet = Fleet::new(EngineKind::Event, BusConfig::default());
    for _ in 0..6 {
        let c = fleet.add_cluster();
        fleet.add_sensor(c, false);
        fleet.add_sensor(c, false);
    }
    let mut reference = Fleet::new(EngineKind::Event, BusConfig::default());
    for _ in 0..6 {
        let c = reference.add_cluster();
        reference.add_sensor(c, false);
        reference.add_sensor(c, false);
    }
    for f in [&mut fleet, &mut reference] {
        for c in 0..6 {
            f.queue_remote(
                FleetNodeId::new(c, 1),
                FleetNodeId::new((c + 2) % 6, 2),
                FuId::ZERO,
                vec![0x51, c as u8],
            )
            .unwrap();
        }
    }
    let want = reference.run_until_quiescent_interleaved();

    let mut sharded = ShardedFleet::new(3);
    let mut sink = CollectSink::default();
    sharded.drive_sink(&mut fleet, &mut sink);

    assert_eq!(want, sink.merged, "merged stream is the pinned one");
    assert_eq!(
        sink.completed,
        (1..=sharded.epochs()).collect::<Vec<_>>(),
        "one completion per progress epoch"
    );

    // Reassemble: group batches by epoch id, sort each epoch's
    // concatenation by the merge key, and stitch epochs in order.
    let mut epoch_ids: Vec<u64> = sink.batches.iter().map(|&(e, _, _)| e).collect();
    epoch_ids.sort_unstable();
    epoch_ids.dedup();
    let mut reassembled = Vec::new();
    for epoch in epoch_ids {
        let mut rows: Vec<(u64, usize, EngineRecord)> = sink
            .batches
            .iter()
            .filter(|&&(e, _, _)| e == epoch)
            .flat_map(|(_, _, records)| records.iter().cloned())
            .collect();
        rows.sort_by_key(|&(round, cluster, _)| (round, cluster));
        reassembled.extend(
            rows.into_iter()
                .map(|(_, cluster, record)| FleetRecord { cluster, record }),
        );
    }
    assert_eq!(want, reassembled, "shard batches reassemble exactly");
}

#[test]
fn per_epoch_spawn_baseline_stays_conformant_over_seeds() {
    // A smaller battery for the spawn-per-epoch baseline mode, so the
    // bench's comparison shape stays pinned to the same bit-identity
    // contract as the persistent pool.
    for seed in 0..common::scaled_seeds(40) {
        let w = FleetWorkload::seeded(seed);
        for kind in [EngineKind::Analytic, EngineKind::Event] {
            let reference = w.run_scheduled_on(kind, FleetSchedule::Interleaved);
            for shards in [2usize, 4] {
                let mut spawned = ShardedFleet::per_epoch_spawn(shards);
                let report = w.run_sharded_on(kind, &mut spawned);
                assert_eq!(reference.records, report.records, "seed={seed} {kind}");
                assert_eq!(
                    reference.signature(),
                    report.signature(),
                    "seed={seed} {kind}"
                );
            }
        }
    }
}

#[test]
fn sharded_scheduler_reuse_reports_per_shard() {
    // One ShardedFleet instance across two drives: totals accumulate,
    // and the per-shard schedulers expose their own slices of the
    // work.
    let mut fleet = Fleet::new(EngineKind::Event, BusConfig::default());
    for _ in 0..6 {
        let c = fleet.add_cluster();
        fleet.add_sensor(c, false);
    }
    let mut sharded = ShardedFleet::new(3);
    for round in 0..2u8 {
        for c in 0..6 {
            fleet
                .queue_remote(
                    FleetNodeId::new(c, 1),
                    FleetNodeId::new((c + 1) % 6, 1),
                    FuId::ZERO,
                    vec![round, c as u8],
                )
                .unwrap();
        }
        sharded.drive(&mut fleet, &mut |_| {});
    }
    // 6 envelope legs + 6 forwarded legs per drive.
    assert_eq!(sharded.transactions(), 24);
    assert_eq!(sharded.shard_schedulers().len(), 3);
    let per_shard: Vec<u64> = sharded
        .shard_schedulers()
        .iter()
        .map(|s| s.transactions())
        .collect();
    assert_eq!(per_shard, vec![8, 8, 8], "two clusters per shard");
    // Every sensor got its neighbor's messages; the gateway rx logs
    // stayed clean.
    for c in 0..6 {
        assert_eq!(fleet.take_rx(FleetNodeId::new(c, 1)).len(), 2);
        assert!(fleet.take_rx(FleetNodeId::new(c, GATEWAY_NODE)).is_empty());
    }
}
