//! Sharded-fleet conformance: the multi-threaded sharded drain
//! ([`ShardedFleet`]) must be **bit-identical** to the single-threaded
//! interleaved drain — full fleet-wide record stream, per-cluster
//! [`FleetSignature`] content (records, deliveries, wake accounting),
//! and merged gateway counters (forwarded, dropped, per-cluster drop
//! attribution) — for every engine kind and every shard count.
//!
//! The equivalence argument lives in `mbus_core::fleet::shard`'s
//! module docs: workers issue each cluster the same autonomous-drain
//! call sequence the single-threaded scheduler would, a cluster's
//! `j`-th transaction of an epoch always lands in round `j`, so the
//! barrier's `(round, cluster)` merge reproduces the round-robin
//! order, and the per-shard gateway counters are sums that merge
//! order-independently. This suite pins all of it over hundreds of
//! seeded fleets (which include unroutable envelopes and mid-epoch
//! partial drains) at shard counts {1, 2, 4, 7} — spanning one-worker
//! degeneration, even splits, ragged splits, and more workers than
//! clusters.
//!
//! [`FleetSignature`]: mbus_core::FleetSignature
//! [`ShardedFleet`]: mbus_core::ShardedFleet

mod common;

use mbus_core::fleet::{Fleet, FleetNodeId, GatewayNode, ShardedFleet, GATEWAY_NODE};
use mbus_core::{
    Address, BusConfig, EngineKind, FleetSchedule, FleetWorkload, FuId, FullPrefix, Message,
    ShortPrefix,
};

/// The acceptance-bar shard counts: degenerate, even, ragged, and
/// larger than most seeded fleets' cluster counts.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

#[test]
fn seeded_fleets_shard_equivalently_over_200_seeds() {
    // The kernel-sharing kinds over the full seed battery: for each
    // seed, the single-threaded interleaved drain is the reference and
    // every shard count must reproduce it bit for bit.
    for seed in 0..common::scaled_seeds(200) {
        let w = FleetWorkload::seeded(seed);
        for kind in [EngineKind::Analytic, EngineKind::Event] {
            let reference = w.run_scheduled_on(kind, FleetSchedule::Interleaved);
            for shards in SHARD_COUNTS {
                common::sharded_crosscheck(&w, kind, &reference, shards);
            }
        }
    }
}

#[test]
fn seeded_fleets_shard_equivalently_on_the_wire_engine() {
    // The edge-accurate engine over the same 200-seed battery.
    // Sharded-vs-interleaved is a *same-kind* comparison, so even
    // seeds with partial drains (not wire-comparable across kinds)
    // must agree here: every schedule issues the identical per-cluster
    // call sequence.
    for seed in 0..common::scaled_seeds(200) {
        let w = FleetWorkload::seeded(seed);
        let reference = w.run_scheduled_on(EngineKind::Wire, FleetSchedule::Interleaved);
        for shards in SHARD_COUNTS {
            common::sharded_crosscheck(&w, EngineKind::Wire, &reference, shards);
        }
    }
}

#[test]
fn partial_drains_preserve_schedule_independence() {
    // The satellite pin: batched ≡ interleaved ≡ sharded still holds
    // when the workload stops mid-epoch and queues into part-drained
    // buses (FleetStep::RunRounds) — each cluster runs exactly
    // min(rounds, pending) transactions under every schedule.
    let mut w = FleetWorkload::new("partial/handmade", BusConfig::default())
        .cluster(vec![false, false])
        .cluster(vec![false, false])
        .cluster(vec![false]);
    let dst = FleetNodeId::new(2, 1);
    for c in 0..2 {
        for j in 1..=2 {
            w = w.send_remote(
                FleetNodeId::new(c, j),
                dst,
                FuId::ZERO,
                vec![c as u8, j as u8],
            );
        }
    }
    // Stop after one round, then pile more traffic onto half-drained
    // buses before the full drain.
    w = w.drain_rounds(1);
    for c in 0..2 {
        w = w.send_remote(FleetNodeId::new(c, 1), dst, FuId::ZERO, vec![0xEE, c as u8]);
    }
    assert!(!w.wire_comparable(), "partial drains gate wire cross-kind");

    for kind in EngineKind::ALL {
        let batched = w.run_scheduled_on(kind, FleetSchedule::Batched);
        let interleaved = w.run_scheduled_on(kind, FleetSchedule::Interleaved);
        assert_eq!(batched.signature(), interleaved.signature(), "{kind}");
        for shards in SHARD_COUNTS {
            common::sharded_crosscheck(&w, kind, &interleaved, shards);
        }
    }
}

#[test]
fn sharded_gateway_drops_attribute_to_the_receiving_cluster() {
    // Unroutable envelopes queued on different clusters: the merged
    // per-cluster drop counters must attribute each drop to the bus
    // whose gateway presence received it, identically at every shard
    // count.
    for kind in EngineKind::ALL {
        let mut reports = Vec::new();
        for &shards in &[0usize, 2, 7] {
            let mut fleet = Fleet::new(kind, BusConfig::default());
            for _ in 0..4 {
                let c = fleet.add_cluster();
                fleet.add_sensor(c, false);
            }
            let port = Address::short(ShortPrefix::new(0x1).unwrap(), FuId::ZERO);
            for c in [0usize, 2, 2] {
                let envelope = GatewayNode::encapsulate(
                    FullPrefix::new(0x8BAD0 + c as u32).unwrap(),
                    FuId::ZERO,
                    &[c as u8],
                );
                fleet
                    .queue(FleetNodeId::new(c, 1), Message::new(port, envelope))
                    .unwrap();
            }
            if shards == 0 {
                fleet.run_until_quiescent_interleaved();
            } else {
                fleet.run_until_quiescent_sharded(shards);
            }
            reports.push((
                fleet.gateway().forwarded(),
                fleet.gateway().dropped(),
                (0..4)
                    .map(|c| fleet.gateway().dropped_on(c))
                    .collect::<Vec<_>>(),
            ));
        }
        for r in &reports[1..] {
            assert_eq!(&reports[0], r, "{kind}");
        }
        assert_eq!(reports[0].1, 3, "{kind}: all three envelopes dropped");
        assert_eq!(
            reports[0].2,
            vec![1, 0, 2, 0],
            "{kind}: attributed per cluster"
        );
    }
}

#[test]
fn wide_fleet_shards_with_ragged_and_oversized_counts() {
    // 32 clusters / 96 nodes: even splits, ragged splits (5 workers x
    // 7-cluster chunks), and more workers than clusters all reproduce
    // the single-threaded stream.
    let w = FleetWorkload::sense_and_aggregate(32, 2, 2);
    let reference = w.run_scheduled_on(EngineKind::Event, FleetSchedule::Interleaved);
    assert!(reference.total_nodes() > 90);
    for shards in [2usize, 5, 8, 32, 64] {
        common::sharded_crosscheck(&w, EngineKind::Event, &reference, shards);
    }
}

#[test]
fn sharded_fairness_counters_are_consistent() {
    // The fairness report: per-cluster transaction totals must equal
    // the record stream's per-cluster counts (schedule-independent),
    // and the round-robin starvation gauge is bounded by the widest
    // shard's simultaneously active cluster count.
    let w = FleetWorkload::cross_storm(6, 2, 3);
    for shards in [1usize, 3] {
        let report = w.run_scheduled_on(EngineKind::Event, FleetSchedule::Sharded { shards });
        let fairness = report.fairness.as_ref().expect("sharded drains report");
        for c in 0..6 {
            let counted = report.records.iter().filter(|r| r.cluster == c).count() as u64;
            assert_eq!(
                fairness.cluster_transactions[c], counted,
                "shards={shards} cluster {c}"
            );
        }
        let widest_shard = 6usize.div_ceil(shards) as u64;
        assert!(
            fairness.max_turn_gap < widest_shard,
            "shards={shards}: gap {} vs shard width {widest_shard}",
            fairness.max_turn_gap
        );
        assert!(fairness.epochs > 0, "shards={shards}");
        assert!(
            fairness.max_cluster_epoch_transactions >= 1,
            "shards={shards}"
        );
    }
}

#[test]
fn sharded_scheduler_reuse_reports_per_shard() {
    // One ShardedFleet instance across two drives: totals accumulate,
    // and the per-shard schedulers expose their own slices of the
    // work.
    let mut fleet = Fleet::new(EngineKind::Event, BusConfig::default());
    for _ in 0..6 {
        let c = fleet.add_cluster();
        fleet.add_sensor(c, false);
    }
    let mut sharded = ShardedFleet::new(3);
    for round in 0..2u8 {
        for c in 0..6 {
            fleet
                .queue_remote(
                    FleetNodeId::new(c, 1),
                    FleetNodeId::new((c + 1) % 6, 1),
                    FuId::ZERO,
                    vec![round, c as u8],
                )
                .unwrap();
        }
        sharded.drive(&mut fleet, &mut |_| {});
    }
    // 6 envelope legs + 6 forwarded legs per drive.
    assert_eq!(sharded.transactions(), 24);
    assert_eq!(sharded.shard_schedulers().len(), 3);
    let per_shard: Vec<u64> = sharded
        .shard_schedulers()
        .iter()
        .map(|s| s.transactions())
        .collect();
    assert_eq!(per_shard, vec![8, 8, 8], "two clusters per shard");
    // Every sensor got its neighbor's messages; the gateway rx logs
    // stayed clean.
    for c in 0..6 {
        assert_eq!(fleet.take_rx(FleetNodeId::new(c, 1)).len(), 2);
        assert!(fleet.take_rx(FleetNodeId::new(c, GATEWAY_NODE)).is_empty());
    }
}
