//! Closed-loop conformance suite: reactive behavior tables and the
//! multi-hop gateway mesh, pinned across every engine kind × fleet
//! schedule × shard count.
//!
//! Behaviors are injected at quiescence barriers *above* the engines
//! (see `mbus_core::behavior`), so the conformance claim is strong:
//! the programmed responses — and everything they trigger, including
//! multi-hop mesh forwards and TTL deaths — must be bit-identical on
//! the analytic, event, and wire engines, under batched, interleaved,
//! and sharded(1|2|4) schedules, with rebalancing on or off.

mod common;

use mbus_core::{EngineKind, FleetSchedule, FleetWorkload};

/// The acceptance grid: seeded reactive fleets produce identical
/// [`mbus_core::FleetSignature`]s across all three engines ×
/// batched/interleaved/sharded(1,2,4) × both balance modes, over ≥200
/// seeds at the default `MBUS_SEED_SCALE`. The census assertions at
/// the bottom keep the battery honest: if the generator ever stops
/// drawing behaviors or mesh routes, this fails instead of silently
/// testing open-loop fleets.
#[test]
fn reactive_seeded_fleets_agree_across_the_full_grid() {
    let mut reactive = 0u64;
    let mut meshed = 0u64;
    for seed in 0..common::scaled_seeds(200) {
        let w = FleetWorkload::seeded(seed);
        reactive += u64::from(!w.behaviors().is_empty());
        meshed += u64::from(!w.mesh_routes().is_empty());
        // Cross-engine identity first (the helper asserts)...
        common::fleet_crosscheck_all_engines(&w);
        // ...then the schedule × shard × balance grid per kind.
        for kind in common::fleet_comparable_kinds(&w) {
            let (_, interleaved) = common::schedule_crosscheck(&w, kind);
            for shards in [1, 2, 4] {
                common::sharded_crosscheck(&w, kind, &interleaved, shards);
            }
        }
    }
    let seeds = common::scaled_seeds(200);
    // ~1/6 of sensors carry behaviors and ~1/3 of seeds split into two
    // mesh domains; demand a loose floor so a generator regression
    // can't hollow the battery out.
    assert!(
        reactive * 3 >= seeds,
        "only {reactive}/{seeds} seeds drew reactive behaviors"
    );
    assert!(
        meshed * 8 >= seeds,
        "only {meshed}/{seeds} seeds drew mesh routes"
    );
}

/// The ≥1000-bus acceptance scenario: a duty-cycled request/response
/// day across 1024 bridged buses in two mesh domains drains to
/// quiescence on every engine with identical signatures, every request
/// and reply crosses the inter-gateway boundary, nothing is dropped,
/// and reply traffic (each injected reply is one source transmission
/// plus one forwarded delivery leg) is at least 30% of all bus
/// transactions.
#[test]
fn duty_cycle_day_closes_the_loop_at_1024_buses() {
    let w = FleetWorkload::duty_cycle_day(1024, 2);
    let reports = common::fleet_crosscheck_all_engines(&w);
    assert_eq!(
        reports.len(),
        EngineKind::ALL.len(),
        "the duty-cycle day must stay wire-comparable"
    );
    let report = &reports[0];
    let transactions = report.transactions() as u64;
    assert_eq!(report.dropped, 0, "closed-loop traffic must not drop");
    assert_eq!(
        report.injected_replies, 1024,
        "every request must draw exactly one reply"
    );
    assert!(
        report.hop_forwards >= 2048,
        "requests and replies must each take an inter-gateway hop"
    );
    assert!(
        10 * 2 * report.injected_replies >= 3 * transactions,
        "reply share fell below 30% ({} replies / {transactions} transactions)",
        report.injected_replies
    );
    // The same day, sharded 4-ways with rebalancing on and off, is
    // bit-identical to the single-threaded interleaved drain.
    let interleaved = w.run_scheduled_on(EngineKind::Analytic, FleetSchedule::Interleaved);
    common::sharded_crosscheck(&w, EngineKind::Analytic, &interleaved, 4);
}

/// The alarm cascade's wave crosses the mesh boundary and is bounded
/// by the reply horizon — on every engine, with the same hop
/// accounting.
#[test]
fn alarm_cascade_crosses_the_mesh_and_stays_horizon_bounded() {
    let w = FleetWorkload::alarm_cascade(1024, 2);
    let reports = common::fleet_crosscheck_all_engines(&w);
    let report = &reports[0];
    assert!(
        report.injected_replies > 0,
        "the spark must trip the cascade"
    );
    assert!(
        report.hop_forwards > 0,
        "the wave must cross the inter-gateway boundary"
    );
    assert_eq!(
        report.reply_rounds,
        u64::from(w.reply_horizon()),
        "an alarm cascade re-broadcasts until the horizon cuts it off"
    );
}

/// Aggregate-and-ack fan-in: 1023 reporters feed one collector, which
/// acks every 4th report back through the mesh — identical everywhere,
/// with the ack count pinned.
#[test]
fn aggregate_fanin_acks_through_the_mesh() {
    let w = FleetWorkload::aggregate_fanin(1024, 4, 2);
    let reports = common::fleet_crosscheck_all_engines(&w);
    let report = &reports[0];
    // 2 rounds × 1023 reports = 2046 triggers; every 4th draws an ack.
    assert_eq!(report.injected_replies, 2046 / 4, "ack cadence drifted");
    assert!(report.hop_forwards > 0, "acks must cross the mesh");
    assert_eq!(report.dropped, 0, "return addresses must all route");
}
