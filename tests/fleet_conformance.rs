//! Fleet conformance suite: the gateway-bridged multi-bus layer must
//! behave identically on every [`mbus_core::BusEngine`] implementation.
//!
//! Where `tests/engine_conformance.rs` pins each engine to the
//! single-bus contract, this suite pins the *fleet* semantics: a
//! cross-cluster message produces the same [`FleetSignature`] on every
//! engine kind (analytic, wire, and event — all three via the shared
//! `tests/common` helper), forwarding into a power-gated destination
//! cluster wakes it exactly as a local transmission would (gated bus
//! controllers charged once per transaction, per the shared accounting),
//! and a 100+-node fleet — population no single 14-prefix bus can hold —
//! runs deterministically on every engine.

mod common;

use mbus_core::fleet::{Fleet, FleetNodeId, FleetWorkload, GATEWAY_NODE};
use mbus_core::{BusConfig, EngineKind, FuId};

/// A two-cluster fleet: cluster 0 carries an always-on reporter,
/// cluster 1 carries two power-gated sensors.
fn bridged_pair(kind: EngineKind) -> (Fleet, FleetNodeId, FleetNodeId, FleetNodeId) {
    let mut fleet = Fleet::new(kind, BusConfig::default());
    let a = fleet.add_cluster();
    let b = fleet.add_cluster();
    let reporter = fleet.add_sensor(a, false);
    let gated_dest = fleet.add_sensor(b, true);
    let gated_bystander = fleet.add_sensor(b, true);
    (fleet, reporter, gated_dest, gated_bystander)
}

#[test]
fn cross_cluster_message_produces_identical_signatures() {
    let w = FleetWorkload::new("crosscheck", BusConfig::default())
        .cluster(vec![false, false])
        .cluster(vec![false, true])
        .send_remote(
            FleetNodeId::new(0, 1),
            FleetNodeId::new(1, 2),
            FuId::ZERO,
            vec![0xCA, 0xFE],
        )
        .drain();
    let signatures: Vec<_> = common::fleet_crosscheck_all_engines(&w)
        .iter()
        .map(|report| report.signature())
        .collect();
    assert_eq!(signatures[0].forwarded, 1);
    assert_eq!(signatures[0].dropped, 0);
    // The destination cluster saw exactly the forwarded delivery.
    assert_eq!(signatures[0].clusters[1].deliveries[2].len(), 1);
    assert_eq!(
        signatures[0].clusters[1].deliveries[2][0].2,
        vec![0xCA, 0xFE]
    );
}

#[test]
fn forwarding_wakes_a_power_gated_destination_cluster() {
    // §4.3–4.4 through the gateway: the forwarded transaction's
    // arbitration edges wake every gated bus controller on the
    // destination bus once (PR 2 accounting), the destination's layer
    // powers up for delivery, and the always-on gateway presence is
    // never charged a wake.
    for kind in EngineKind::ALL {
        let (mut fleet, reporter, gated_dest, gated_bystander) = bridged_pair(kind);
        assert!(!fleet.layer_on(gated_dest), "{kind}: boots gated");
        fleet
            .queue_remote(reporter, gated_dest, FuId::ZERO, vec![0x42])
            .unwrap();
        let records = fleet.run_until_quiescent();
        assert_eq!(records.len(), 2, "{kind}: envelope leg + forwarded leg");
        assert_eq!(
            (records[0].cluster, records[1].cluster),
            (0, 1),
            "{kind}: store-and-forward ordering"
        );

        // Delivered while gated, then re-gated.
        let rx = fleet.take_rx(gated_dest);
        assert_eq!(rx.len(), 1, "{kind}");
        assert_eq!(rx[0].payload, vec![0x42], "{kind}");
        assert_eq!(rx[0].from, GATEWAY_NODE, "{kind}: gateway transmitted");
        assert!(
            !fleet.layer_on(gated_dest),
            "{kind}: re-gated after delivery"
        );

        // Source bus: no gated members, no wakes.
        let src_stats = fleet.stats(0);
        assert_eq!(src_stats.transactions, 1, "{kind}");
        assert_eq!(src_stats.bus_ctl_wakes, vec![0, 0], "{kind}");
        assert_eq!(src_stats.layer_wakes, vec![0, 0], "{kind}");

        // Destination bus: one forwarded transaction; each gated bus
        // controller charged exactly once, the destination's layer woke
        // once, the bystander's layer stayed down, and the always-on
        // gateway presence was charged nothing.
        let dst_stats = fleet.stats(1);
        assert_eq!(dst_stats.transactions, 1, "{kind}");
        assert_eq!(
            dst_stats.bus_ctl_wakes,
            vec![0, 1, 1],
            "{kind}: gateway uncharged, each gated controller woken once"
        );
        assert_eq!(dst_stats.layer_wakes, vec![0, 1, 0], "{kind}");
        assert_eq!(fleet.wake_events(gated_bystander), 0, "{kind}");
    }
}

#[test]
fn hundred_node_fleet_matches_across_engines() {
    // The acceptance bar: a fleet well past the single-bus 14-node
    // limit, deterministic on every engine with matching signatures.
    let w = FleetWorkload::cross_storm(8, 12, 1);
    assert!(w.total_nodes() >= 100, "{} nodes", w.total_nodes());

    let reports = common::fleet_crosscheck_all_engines(&w);
    let analytic = &reports[0];
    assert_eq!(analytic.total_nodes(), 8 * 13);
    assert_eq!(
        analytic.forwarded,
        8 * 12,
        "every message crossed the gateway"
    );
    assert_eq!(analytic.dropped, 0);

    // Determinism: the same workload replays bit-identically.
    assert_eq!(
        analytic.signature(),
        w.run_on(EngineKind::Analytic).signature()
    );
}

#[test]
fn fleet_record_interleaving_is_engine_independent() {
    // Stronger than per-cluster signatures: for a strict-null workload
    // the full scheduler-ordered (cluster, record) stream must match
    // across every engine kind, pinning the epoch schedule itself.
    let w = FleetWorkload::cross_storm(3, 2, 2);
    let reports = common::fleet_crosscheck_all_engines(&w);
    for report in &reports[1..] {
        assert_eq!(reports[0].records, report.records, "{}", report.kind);
    }
}

#[test]
fn seeded_fleets_agree_across_engines() {
    // The fleet-level fuzzer (cross-cluster destinations, priority
    // envelopes, unroutable envelopes, wakeups, gated senders,
    // mid-epoch partial drains) cross-checked three ways — the
    // edge-accurate engine included whenever the seed is
    // wire-comparable (partial drains pin analytic ≡ event only).
    for seed in 0..common::scaled_seeds(24) {
        common::fleet_crosscheck_all_engines(&FleetWorkload::seeded(seed));
    }
}

#[test]
fn gateway_drop_attribution_is_engine_independent() {
    // The per-cluster drop counter in FleetSignature: engines must
    // agree not just on how many envelopes vanished but on which bus's
    // gateway presence dropped them. Two unroutable envelopes received
    // on cluster 1, none anywhere else.
    let unroutable = mbus_core::fleet::GatewayNode::encapsulate(
        mbus_core::FullPrefix::new(0x8F00D).unwrap(),
        FuId::ZERO,
        &[0x99],
    );
    let port = mbus_core::Address::short(mbus_core::ShortPrefix::new(0x1).unwrap(), FuId::ZERO);
    let mut w = FleetWorkload::new("drop_attribution", BusConfig::default())
        .cluster(vec![false])
        .cluster(vec![false, false]);
    for sensor in 1..=2 {
        w = w.send_local(
            FleetNodeId::new(1, sensor),
            mbus_core::Message::new(port, unroutable.clone()),
        );
    }
    let reports = common::fleet_crosscheck_all_engines(&w);
    let signature = reports[0].signature();
    assert_eq!(signature.dropped, 2);
    assert_eq!(
        signature.cluster_drops,
        vec![0, 2],
        "attributed to cluster 1"
    );
    assert_eq!(signature.forwarded, 0);
    // And a signature that differs only in drop attribution must not
    // compare equal: the counter is load-bearing in conformance.
    let mut tampered = signature.clone();
    tampered.cluster_drops = vec![2, 0];
    assert_ne!(signature, tampered);
}

#[test]
fn seeded_fleets_are_reproducible_over_200_seeds() {
    for seed in 0..common::scaled_seeds(200) {
        let w = FleetWorkload::seeded(seed);
        let a = w.run_on(EngineKind::Analytic);
        let b = w.run_on(EngineKind::Analytic);
        assert_eq!(
            a.signature(),
            b.signature(),
            "{} not reproducible",
            w.name()
        );
        assert_eq!(a.forwarded, b.forwarded, "{}", w.name());
    }
}

#[test]
fn aggregation_pattern_collects_every_cluster_on_all_engines() {
    // sense_and_aggregate: gated sensors report locally, aggregators
    // send one cross-cluster message each; the collector must hold one
    // aggregate per cluster per round, identically on every engine.
    let (clusters, sensors, rounds) = (3, 3, 2);
    let w = FleetWorkload::sense_and_aggregate(clusters, sensors, rounds);
    let mut reports = common::fleet_crosscheck_all_engines(&w);
    for report in &mut reports {
        let kind = report.kind;
        assert_eq!(
            report.forwarded as usize,
            clusters * rounds,
            "{kind}: one aggregate per cluster per round"
        );
        let collector_rx = &report.rx[0][1];
        let aggregates = collector_rx
            .iter()
            .filter(|m| m.from == GATEWAY_NODE || m.dest.wire_bits() == 32)
            .count();
        assert!(
            aggregates >= (clusters - 1) * rounds,
            "{kind}: collector saw {aggregates} forwarded aggregates"
        );
    }
}
