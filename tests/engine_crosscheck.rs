//! Cross-checks the two MBus engines against each other: the
//! transaction-level `AnalyticBus` (the §6.1 cycle budget) and the
//! edge-accurate `WireBus` must agree on winners, deliveries, control
//! bits, and cycle counts for the same scenarios.

use mbus_core::wire::WireBusBuilder;
use mbus_core::{
    timing, Address, AnalyticBus, BroadcastChannel, BusConfig, FuId, FullPrefix, Message,
    NodeSpec, ShortPrefix,
};

const MAX_EVENTS: u64 = 50_000_000;

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn addr(x: u8) -> Address {
    Address::short(sp(x), FuId::ZERO)
}

fn specs(n: usize) -> Vec<NodeSpec> {
    (0..n)
        .map(|i| {
            NodeSpec::new(format!("n{i}"), FullPrefix::new(0x300 + i as u32).unwrap())
                .with_short_prefix(sp((i + 1) as u8))
        })
        .collect()
}

fn build_both(n: usize) -> (AnalyticBus, mbus_core::wire::WireBus) {
    let config = BusConfig::default();
    let mut analytic = AnalyticBus::new(config);
    let mut wire = WireBusBuilder::new(config);
    for spec in specs(n) {
        analytic.add_node(spec.clone());
        wire = wire.node(spec);
    }
    (analytic, wire.build())
}

#[test]
fn cycle_counts_agree_across_payload_sizes() {
    for payload in [0usize, 1, 2, 7, 8, 16, 64, 200] {
        let (mut analytic, mut wire) = build_both(3);
        let msg = Message::new(addr(0x2), vec![0x3C; payload]);

        analytic.queue(0, msg.clone()).unwrap();
        let a = analytic.run_transaction().unwrap();

        wire.queue(0, msg.clone()).unwrap();
        let w = wire.run_until_quiescent(MAX_EVENTS);

        assert_eq!(w.len(), 1);
        assert_eq!(a.cycles, w[0].cycles, "payload {payload}");
        assert_eq!(a.cycles, timing::transaction_cycles(&msg) as u64);
        assert_eq!(a.control, w[0].control.unwrap());
    }
}

#[test]
fn full_address_cycles_agree() {
    let (mut analytic, mut wire) = build_both(3);
    let dest = Address::full(FullPrefix::new(0x302).unwrap(), FuId::ZERO);
    let msg = Message::new(dest, vec![9; 12]);

    analytic.queue(0, msg.clone()).unwrap();
    let a = analytic.run_transaction().unwrap();
    wire.queue(0, msg).unwrap();
    let w = wire.run_until_quiescent(MAX_EVENTS);

    assert_eq!(a.cycles, 43 + 96);
    assert_eq!(a.cycles, w[0].cycles);
    assert_eq!(analytic.take_rx(2)[0].payload, wire.take_rx(2)[0].payload);
}

#[test]
fn deliveries_agree_for_member_to_member() {
    let (mut analytic, mut wire) = build_both(4);
    let payload = vec![0xDE, 0xAD, 0xBE, 0xEF];
    let msg = Message::new(addr(0x4), payload.clone());

    analytic.queue(1, msg.clone()).unwrap();
    analytic.run_transaction().unwrap();
    wire.queue(1, msg).unwrap();
    wire.run_until_quiescent(MAX_EVENTS);

    assert_eq!(analytic.take_rx(3)[0].payload, payload);
    assert_eq!(wire.take_rx(3)[0].payload, payload);
}

#[test]
fn arbitration_order_agrees_under_contention() {
    let (mut analytic, mut wire) = build_both(4);
    // Nodes 1, 2, 3 all want to talk to node 0.
    for i in [3usize, 1, 2] {
        let msg = Message::new(addr(0x1), vec![i as u8]);
        analytic.queue(i, msg.clone()).unwrap();
        wire.queue(i, msg).unwrap();
    }
    analytic.run_until_quiescent();
    wire.run_until_quiescent(MAX_EVENTS);

    let a_order: Vec<u8> = analytic.take_rx(0).iter().map(|m| m.payload[0]).collect();
    let w_order: Vec<u8> = wire.take_rx(0).iter().map(|m| m.payload[0]).collect();
    assert_eq!(a_order, vec![1, 2, 3], "topological order");
    assert_eq!(a_order, w_order);
}

#[test]
fn priority_claim_agrees() {
    let (mut analytic, mut wire) = build_both(4);
    let plain = Message::new(addr(0x1), vec![0x0B]);
    let urgent = Message::new(addr(0x1), vec![0x0C]).with_priority();
    analytic.queue(1, plain.clone()).unwrap();
    analytic.queue(3, urgent.clone()).unwrap();
    wire.queue(1, plain).unwrap();
    wire.queue(3, urgent).unwrap();

    analytic.run_until_quiescent();
    wire.run_until_quiescent(MAX_EVENTS);

    let a_order: Vec<u8> = analytic.take_rx(0).iter().map(|m| m.payload[0]).collect();
    let w_order: Vec<u8> = wire.take_rx(0).iter().map(|m| m.payload[0]).collect();
    assert_eq!(a_order, vec![0x0C, 0x0B], "priority message first");
    assert_eq!(a_order, w_order);
}

#[test]
fn broadcast_fanout_agrees() {
    let (mut analytic, mut wire) = build_both(5);
    let msg = Message::new(
        Address::broadcast(BroadcastChannel::CONFIGURATION),
        vec![0x11],
    );
    analytic.queue(0, msg.clone()).unwrap();
    analytic.run_transaction().unwrap();
    wire.queue(0, msg).unwrap();
    wire.run_until_quiescent(MAX_EVENTS);

    for node in 1..5 {
        assert_eq!(analytic.take_rx(node).len(), 1, "analytic node {node}");
        assert_eq!(wire.take_rx(node).len(), 1, "wire node {node}");
    }
    assert!(analytic.take_rx(0).is_empty());
    assert!(wire.take_rx(0).is_empty());
}

#[test]
fn null_transaction_cycles_agree() {
    let (mut analytic, mut wire) = build_both(3);
    analytic.request_wakeup(2).unwrap();
    let a = analytic.run_transaction().unwrap();
    wire.request_wakeup(2).unwrap();
    let w = wire.run_until_quiescent(MAX_EVENTS);

    assert_eq!(a.winner, None);
    assert!(w[0].null_transaction);
    assert_eq!(a.cycles, w[0].cycles);
    assert_eq!(a.cycles, 11);
    assert_eq!(analytic.wake_events(2), 1);
    assert_eq!(wire.wake_events(2), 1);
}

#[test]
fn runaway_enforcement_agrees() {
    let (mut analytic, mut wire) = build_both(3);
    let oversized = Message::new(addr(0x2), vec![0; 1500]);
    analytic.queue_unchecked(0, oversized.clone()).unwrap();
    let a = analytic.run_transaction().unwrap();
    wire.queue_unchecked(0, oversized).unwrap();
    let w = wire.run_until_quiescent(MAX_EVENTS);

    assert_eq!(a.cycles, 19 + 8 * 1024 + 1);
    assert_eq!(a.cycles, w[0].cycles);
    assert!(w[0].runaway);
    assert!(analytic.take_rx(1).is_empty());
    assert!(wire.take_rx(1).is_empty());
}

#[test]
fn receiver_abort_cycles_agree() {
    let config = BusConfig::default();
    let mut analytic = AnalyticBus::new(config);
    let mut wire_b = WireBusBuilder::new(config);
    for (i, mut spec) in specs(3).into_iter().enumerate() {
        if i == 1 {
            spec = spec.with_rx_buffer(16);
        }
        analytic.add_node(spec.clone());
        wire_b = wire_b.node(spec);
    }
    let mut wire = wire_b.build();

    let msg = Message::new(addr(0x2), vec![0x44; 100]);
    analytic.queue(0, msg.clone()).unwrap();
    let a = analytic.run_transaction().unwrap();
    wire.queue(0, msg).unwrap();
    let w = wire.run_until_quiescent(MAX_EVENTS);

    assert_eq!(a.cycles, 19 + 8 * 16 + 1);
    assert_eq!(a.cycles, w[0].cycles);
    assert!(a.control.is_error());
    assert!(w[0].control.unwrap().is_error());
}

#[test]
fn power_wake_accounting_agrees() {
    let config = BusConfig::default();
    let mut analytic = AnalyticBus::new(config);
    let mut wire_b = WireBusBuilder::new(config);
    for (i, spec) in specs(3).into_iter().enumerate() {
        let spec = if i > 0 { spec.power_aware(true) } else { spec };
        analytic.add_node(spec.clone());
        wire_b = wire_b.node(spec);
    }
    let mut wire = wire_b.build();

    let msg = Message::new(addr(0x2), vec![0x01]);
    analytic.queue(0, msg.clone()).unwrap();
    analytic.run_transaction().unwrap();
    wire.queue(0, msg).unwrap();
    wire.run_until_quiescent(MAX_EVENTS);

    // Destination layer woke exactly once; bystander layer never.
    assert_eq!(analytic.stats().layer_wakes[1], 1);
    assert_eq!(wire.layer_wakes(1), 1);
    assert_eq!(analytic.stats().layer_wakes[2], 0);
    assert_eq!(wire.layer_wakes(2), 0);
}

#[test]
fn back_to_back_stream_cycles_agree() {
    let (mut analytic, mut wire) = build_both(3);
    let mut a_total = 0u64;
    for i in 0..10u8 {
        let msg = Message::new(addr(0x3), vec![i; (i as usize % 5) + 1]);
        analytic.queue(0, msg.clone()).unwrap();
        a_total += analytic.run_transaction().unwrap().cycles;
        wire.queue(0, msg).unwrap();
    }
    let w_total: u64 = wire
        .run_until_quiescent(MAX_EVENTS)
        .iter()
        .map(|t| t.cycles)
        .sum();
    assert_eq!(a_total, w_total);
    assert_eq!(analytic.take_rx(2).len(), wire.take_rx(2).len());
}
