//! Cross-checks the MBus engines against each other through the
//! engine-generic scenario layer: every workload is defined *once* and
//! executed on every `EngineKind` — the transaction-level
//! `AnalyticBus` (the §6.1 cycle budget), the edge-accurate
//! `WireEngine`, and the cooperative `EventEngine`; the normalized
//! [`ScenarioSignature`]s — records, winners, deliveries, outcomes,
//! control bits, wake accounting — must be identical three ways.
//!
//! [`ScenarioSignature`]: mbus_core::scenario::ScenarioSignature

mod common;

use mbus_core::{
    timing, Address, BroadcastChannel, BusConfig, EngineKind, FuId, FullPrefix, Message, NodeSpec,
    ScenarioReport, ShortPrefix, TxOutcome, Workload,
};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn addr(x: u8) -> Address {
    Address::short(sp(x), FuId::ZERO)
}

/// A plain `n`-node ring (no power gating) as a workload base.
fn ring(n: usize) -> Workload {
    let mut w = Workload::new(format!("ring{n}"), BusConfig::default());
    for i in 0..n {
        w = w.node(
            NodeSpec::new(format!("n{i}"), FullPrefix::new(0x300 + i as u32).unwrap())
                .with_short_prefix(sp((i + 1) as u8)),
        );
    }
    w
}

/// Runs `workload` on every engine kind, asserts three-way signature
/// equality (the shared helper), and returns the `(analytic, wire)`
/// reports for extra, scenario-specific assertions.
fn crosscheck(workload: &Workload) -> (ScenarioReport, ScenarioReport) {
    let mut reports = common::crosscheck_all_engines(workload);
    assert_eq!(reports.len(), EngineKind::ALL.len());
    let wire = reports.remove(1);
    let analytic = reports.remove(0);
    assert_eq!(analytic.kind, EngineKind::Analytic);
    assert_eq!(wire.kind, EngineKind::Wire);
    (analytic, wire)
}

#[test]
fn paper_suite_agrees() {
    // All five paper scenarios — sense-and-send, monitor-alert, storm,
    // enumeration churn, fault injection — from one definition each.
    for workload in Workload::paper_suite() {
        crosscheck(&workload);
    }
}

#[test]
fn cycle_counts_agree_across_payload_sizes() {
    for payload in [0usize, 1, 2, 7, 8, 16, 64, 200] {
        let msg = Message::new(addr(0x2), vec![0x3C; payload]);
        let workload = ring(3).send(0, msg.clone());
        let (analytic, _) = crosscheck(&workload);
        assert_eq!(analytic.records.len(), 1, "payload {payload}");
        assert_eq!(
            analytic.records[0].cycles,
            timing::transaction_cycles(&msg) as u64,
            "payload {payload}"
        );
    }
}

#[test]
fn full_address_cycles_agree() {
    let dest = Address::full(FullPrefix::new(0x302).unwrap(), FuId::ZERO);
    let workload = ring(3).send(0, Message::new(dest, vec![9; 12]));
    let (analytic, wire) = crosscheck(&workload);
    assert_eq!(analytic.records[0].cycles, 43 + 96);
    assert_eq!(wire.rx[2][0].payload, vec![9; 12]);
}

#[test]
fn arbitration_order_agrees_under_contention() {
    // Nodes 3, 1, 2 all want to talk to node 0 (queued out of ring
    // order); topological priority must serve 1, 2, 3.
    let mut workload = ring(4);
    for i in [3usize, 1, 2] {
        workload = workload.send(i, Message::new(addr(0x1), vec![i as u8]));
    }
    let (analytic, _) = crosscheck(&workload);
    let order: Vec<u8> = analytic.rx[0].iter().map(|m| m.payload[0]).collect();
    assert_eq!(order, vec![1, 2, 3], "topological order");
    let winners: Vec<_> = analytic.records.iter().filter_map(|r| r.winner).collect();
    assert_eq!(winners, vec![1, 2, 3]);
}

#[test]
fn priority_claim_agrees() {
    let workload = ring(4)
        .send(1, Message::new(addr(0x1), vec![0x0B]))
        .send(3, Message::new(addr(0x1), vec![0x0C]).with_priority());
    let (analytic, _) = crosscheck(&workload);
    let order: Vec<u8> = analytic.rx[0].iter().map(|m| m.payload[0]).collect();
    assert_eq!(order, vec![0x0C, 0x0B], "priority message first");
}

#[test]
fn broadcast_fanout_agrees() {
    let workload = ring(5).send(
        0,
        Message::new(
            Address::broadcast(BroadcastChannel::CONFIGURATION),
            vec![0x11],
        ),
    );
    let (analytic, wire) = crosscheck(&workload);
    assert_eq!(analytic.records[0].delivered_to, vec![1, 2, 3, 4]);
    for node in 1..5 {
        assert_eq!(wire.rx[node].len(), 1, "wire node {node}");
    }
    assert!(analytic.rx[0].is_empty(), "sender does not hear itself");
}

#[test]
fn null_transaction_cycles_agree() {
    let workload = ring(3).wakeup(2);
    let (analytic, wire) = crosscheck(&workload);
    assert_eq!(analytic.records.len(), 1);
    assert!(analytic.records[0].is_null());
    assert_eq!(analytic.records[0].cycles, 11);
    assert_eq!(wire.wake_events[2], 1);
    assert_eq!(wire.wake_events[1], 0);
}

#[test]
fn runaway_enforcement_agrees() {
    let workload = ring(3).send_unchecked(0, Message::new(addr(0x2), vec![0; 1500]));
    let (analytic, wire) = crosscheck(&workload);
    assert_eq!(analytic.records[0].cycles, 19 + 8 * 1024 + 1);
    assert_eq!(analytic.records[0].outcome, TxOutcome::LengthEnforced);
    assert!(wire.rx[1].is_empty(), "cut message is not delivered");
}

#[test]
fn receiver_abort_cycles_agree() {
    let workload = Workload::new("rx_abort", BusConfig::default())
        .node(NodeSpec::new("n0", FullPrefix::new(0x300).unwrap()).with_short_prefix(sp(1)))
        .node(
            NodeSpec::new("n1", FullPrefix::new(0x301).unwrap())
                .with_short_prefix(sp(2))
                .with_rx_buffer(16),
        )
        .node(NodeSpec::new("n2", FullPrefix::new(0x302).unwrap()).with_short_prefix(sp(3)))
        .send(0, Message::new(addr(0x2), vec![0x44; 100]));
    let (analytic, _) = crosscheck(&workload);
    assert_eq!(analytic.records[0].cycles, 19 + 8 * 16 + 1);
    assert_eq!(analytic.records[0].outcome, TxOutcome::ReceiverAbort);
    assert!(analytic.records[0].control.is_error());
}

#[test]
fn unmatched_address_naks_on_both() {
    let workload = ring(3).send(0, Message::new(addr(0xD), vec![1, 2]));
    let (analytic, _) = crosscheck(&workload);
    assert_eq!(analytic.records[0].outcome, TxOutcome::NoDestination);
    assert!(analytic.records[0].control.is_end_of_message());
    assert!(!analytic.records[0].control.is_acked());
    assert!(analytic.records[0].delivered_to.is_empty());
}

#[test]
fn power_wake_accounting_agrees() {
    let mut workload = Workload::new("wakes", BusConfig::default());
    for i in 0..3u32 {
        let spec = NodeSpec::new(format!("n{i}"), FullPrefix::new(0x300 + i).unwrap())
            .with_short_prefix(sp((i + 1) as u8))
            .power_aware(i > 0);
        workload = workload.node(spec);
    }
    let workload = workload.send(0, Message::new(addr(0x2), vec![0x01]));
    // Signature equality covers layer wakes; spot-check the §4.4 claim:
    // only the destination powers past its bus controller.
    let (analytic, wire) = crosscheck(&workload);
    assert_eq!(analytic.stats.layer_wakes[1], 1);
    assert_eq!(wire.stats.layer_wakes[1], 1);
    assert_eq!(analytic.stats.layer_wakes[2], 0);
    assert_eq!(wire.stats.layer_wakes[2], 0);
}

#[test]
fn back_to_back_stream_cycles_agree() {
    let mut workload = ring(3);
    for i in 0..10u8 {
        workload = workload.send(0, Message::new(addr(0x3), vec![i; (i as usize % 5) + 1]));
    }
    let (analytic, wire) = crosscheck(&workload);
    assert_eq!(analytic.total_cycles(), wire.total_cycles());
    assert_eq!(analytic.rx[2].len(), 10);
}

#[test]
fn storm_scales_to_the_fourteen_node_limit() {
    crosscheck(&Workload::many_node_storm(14, 2));
}

#[test]
fn oversized_message_to_small_buffer_cuts_at_the_receiver() {
    // Hostile-traffic overlap case: when a runaway message targets a
    // small-buffer receiver, the receiver's abort (one bit past its
    // buffer) fires long before the mediator's 1024-byte runaway
    // counter — all engines must attribute the cut to the receiver.
    let workload = Workload::new("runaway_vs_rx_buffer", BusConfig::default())
        .node(NodeSpec::new("n0", FullPrefix::new(0x300).unwrap()).with_short_prefix(sp(1)))
        .node(
            NodeSpec::new("n1", FullPrefix::new(0x301).unwrap())
                .with_short_prefix(sp(2))
                .with_rx_buffer(8),
        )
        .send_unchecked(0, Message::new(addr(0x2), vec![0x5A; 1500]));
    let (analytic, _) = crosscheck(&workload);
    assert_eq!(analytic.records[0].outcome, TxOutcome::ReceiverAbort);
    assert_eq!(analytic.records[0].cycles, 19 + 8 * 8 + 1);
    assert!(analytic.rx[1].is_empty());
}

#[test]
fn back_to_back_overrun_bursts_agree() {
    // Hostile traffic: several deliveries queued to one small-buffer
    // destination before any drain — fits and overruns interleave, and
    // the record stream (including each abort's cycle count) must be
    // identical on every engine.
    let mut workload = Workload::new("rx_burst", BusConfig::default())
        .node(NodeSpec::new("n0", FullPrefix::new(0x310).unwrap()).with_short_prefix(sp(1)))
        .node(
            NodeSpec::new("tiny", FullPrefix::new(0x311).unwrap())
                .with_short_prefix(sp(2))
                .with_rx_buffer(8),
        )
        .node(NodeSpec::new("n2", FullPrefix::new(0x312).unwrap()).with_short_prefix(sp(3)));
    for len in [2usize, 20, 8, 64, 1] {
        workload = workload.send(0, Message::new(addr(0x2), vec![len as u8; len]));
        workload = workload.send(2, Message::new(addr(0x2), vec![0xC0; len.min(9)]));
    }
    let (analytic, _) = crosscheck(&workload);
    let aborts = analytic
        .records
        .iter()
        .filter(|r| r.outcome == TxOutcome::ReceiverAbort)
        .count();
    assert_eq!(aborts, 4, "the 20-, 64-, and two 9-byte messages overran");
    assert_eq!(analytic.rx[1].len(), 6, "the fitting messages delivered");
}

#[test]
fn mid_drain_queueing_is_pinned_analytic_to_event() {
    // Hostile traffic: a partial drain stops the bus with a message
    // still pending, then more traffic (including a priority claim)
    // arrives mid-drain. The wire engine legally runs ahead of
    // `run_transaction` (trait contract), so the helper compares the
    // two kernel-identical engines and skips wire.
    let workload = ring(4)
        .send(1, Message::new(addr(0x1), vec![0x11]))
        .send(1, Message::new(addr(0x1), vec![0x12]))
        .drain_partial(1)
        .send(3, Message::new(addr(0x1), vec![0x33]).with_priority())
        .send(2, Message::new(addr(0x1), vec![0x22]))
        .drain();
    assert!(!workload.wire_comparable());
    let kinds = common::comparable_kinds(&workload);
    assert_eq!(kinds, vec![EngineKind::Analytic, EngineKind::Event]);
    let reports = common::crosscheck_all_engines(&workload);
    // The priority message queued mid-drain preempts the remainder.
    let order: Vec<u8> = reports[0].rx[0].iter().map(|m| m.payload[0]).collect();
    assert_eq!(order, vec![0x11, 0x33, 0x12, 0x22]);
}

#[test]
fn gated_transmitter_wake_nulls_are_the_only_divergence() {
    // The documented engine difference: a power-gated transmitter
    // self-wakes with a null transaction at the wire level. The
    // non-null record streams still agree (that is what the relaxed
    // signature checks); additionally the wire run must contain
    // exactly one more record than the analytic run here.
    let workload = Workload::sense_and_send(1);
    let (analytic, wire) = crosscheck(&workload);
    let event = workload.run_on(EngineKind::Event);
    let nulls = |r: &ScenarioReport| r.records.iter().filter(|r| r.is_null()).count();
    assert_eq!(nulls(&analytic), 0, "analytic folds the self-wake away");
    assert_eq!(nulls(&event), 0, "the event engine folds identically");
    assert_eq!(nulls(&wire), 1, "wire self-wakes the gated sensor once");
}
