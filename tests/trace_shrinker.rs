//! Self-test for the delta-debugging trace shrinker: inject a known
//! "divergence" (a marker byte a predicate hunts for), bury it in a
//! noisy workload, and check the shrinker (a) converges to the minimal
//! trace that still trips the predicate, (b) is deterministic across
//! reruns, and (c) produces a `.mbt` file that re-replays the failure
//! from disk alone — the full fuzz-failure workflow without needing a
//! real engine divergence.

mod common;

use mbus_core::fleet::FleetStep;
use mbus_core::scenario::Step;
use mbus_core::trace::TraceFile;
use mbus_core::{
    shrink_fleet, shrink_workload, Address, BusConfig, EngineKind, FleetNodeId, FleetWorkload,
    FuId, FullPrefix, Message, NodeSpec, ShortPrefix, Workload,
};

/// The injected-divergence marker the predicates hunt for.
const MARKER: u8 = 0x5A;

/// "Diverges" iff the analytic run delivers a payload containing the
/// marker byte — a stand-in for a real cross-engine digest mismatch
/// that lets the suite control exactly which steps are load-bearing.
fn workload_diverges(w: &Workload) -> bool {
    w.run_on(EngineKind::Analytic)
        .rx
        .iter()
        .flatten()
        .any(|rx| rx.payload.contains(&MARKER))
}

fn fleet_diverges(w: &FleetWorkload) -> bool {
    w.run_on(EngineKind::Analytic)
        .rx
        .iter()
        .flatten()
        .flatten()
        .any(|rx| rx.payload.contains(&MARKER))
}

fn short(n: u8) -> Address {
    Address::short(ShortPrefix::new(n).expect("prefix"), FuId::ZERO)
}

/// A noisy six-node workload: wakeups, partial drains, and decoy
/// traffic around one marker send whose payload is mostly padding the
/// payload pass can chew off.
fn noisy_workload() -> Workload {
    let mut w = Workload::new("shrinker/noisy", BusConfig::default());
    for i in 0..6u32 {
        w = w.node(
            NodeSpec::new(
                format!("n{i}"),
                FullPrefix::new(0x0400 + i).expect("prefix"),
            )
            .with_short_prefix(ShortPrefix::new((i + 1) as u8).expect("prefix")),
        );
    }
    w.send(1, Message::new(short(2), vec![0x10, 0x11]))
        .wakeup(3)
        .send(2, Message::new(short(3), vec![0x20]).with_priority())
        .drain_partial(1)
        .send(4, Message::new(short(5), vec![0x30, 0x31]))
        // The injected divergence, padded so the payload pass has work.
        .send(5, Message::new(short(1), vec![MARKER, 0x00, 0x00, 0x00]))
        .send(3, Message::new(short(4), vec![0x40]))
        .drain()
        .send(1, Message::new(short(6), vec![0x50]))
        .drain()
}

/// A three-cluster fleet with the marker on one remote leg plus decoy
/// locals, remotes, and wakeups on every cluster.
fn noisy_fleet() -> FleetWorkload {
    FleetWorkload::new("shrinker/noisy_fleet", BusConfig::default())
        .cluster(vec![false, false])
        .cluster(vec![false, true, false])
        .cluster(vec![false])
        .send_local(FleetNodeId::new(0, 1), Message::new(short(2), vec![0x10]))
        .send_remote(
            FleetNodeId::new(2, 1),
            FleetNodeId::new(0, 2),
            FuId::new(1).expect("fu"),
            vec![0x20, 0x21],
        )
        .wakeup(FleetNodeId::new(1, 2))
        // The injected divergence.
        .send_remote(
            FleetNodeId::new(0, 1),
            FleetNodeId::new(1, 1),
            FuId::new(2).expect("fu"),
            vec![MARKER, 0x00],
        )
        .send_local(
            FleetNodeId::new(1, 3),
            Message::new(short(2), vec![0x30]).with_priority(),
        )
        .drain()
}

#[test]
fn shrinker_converges_to_the_minimal_workload() {
    let noisy = noisy_workload();
    assert!(
        workload_diverges(&noisy),
        "marker must trip before shrinking"
    );
    let min = shrink_workload(&noisy, &mut workload_diverges);
    assert!(workload_diverges(&min), "shrinker lost the failure");

    // 1-minimal step list: the marker send alone — even the drain goes,
    // because `Workload::apply` quiesces implicitly at end-of-trace.
    assert_eq!(
        min.steps().len(),
        1,
        "not minimal: {}",
        TraceFile::workload(min.clone()).to_mbt()
    );
    let Step::Queue { msg, .. } = &min.steps()[0] else {
        panic!("surviving step should be the marker send");
    };
    // The payload pass halved the padding away down to the bare marker.
    assert_eq!(msg.payload(), [MARKER]);
    // Unreferenced decoy nodes dropped; only sender + destination left.
    assert_eq!(min.node_specs().len(), 2, "decoy nodes survived");
}

#[test]
fn shrinker_is_stable_across_reruns() {
    let noisy = noisy_workload();
    let first = TraceFile::workload(shrink_workload(&noisy, &mut workload_diverges)).to_mbt();
    let second = TraceFile::workload(shrink_workload(&noisy, &mut workload_diverges)).to_mbt();
    assert_eq!(first, second, "shrinking is not deterministic");

    let fleet = noisy_fleet();
    let first = TraceFile::fleet(shrink_fleet(&fleet, &mut fleet_diverges)).to_mbt();
    let second = TraceFile::fleet(shrink_fleet(&fleet, &mut fleet_diverges)).to_mbt();
    assert_eq!(first, second, "fleet shrinking is not deterministic");
}

#[test]
fn shrinker_converges_to_the_minimal_fleet() {
    let noisy = noisy_fleet();
    assert!(fleet_diverges(&noisy), "marker must trip before shrinking");
    let min = shrink_fleet(&noisy, &mut fleet_diverges);
    assert!(fleet_diverges(&min), "shrinker lost the failure");

    // The marker remote alone (the fleet runner also drains
    // implicitly at end-of-trace, flushing both forwarding legs).
    assert_eq!(
        min.steps().len(),
        1,
        "not minimal: {}",
        TraceFile::fleet(min.clone()).to_mbt()
    );
    let FleetStep::Remote {
        payload, src, dest, ..
    } = &min.steps()[0]
    else {
        panic!("surviving step should be the marker remote");
    };
    assert_eq!(payload, &[MARKER]);
    // Cluster 2 (the decoy sender) is unreferenced and dropped, and
    // the surviving clusters keep only the sensors the remote needs.
    assert_eq!(min.cluster_specs().len(), 2, "decoy cluster survived");
    assert_eq!((src.cluster, dest.cluster), (0, 1));
    // The minimized fleet still honors every engine/schedule contract.
    common::fleet_crosscheck_all_engines(&min);
    for kind in common::fleet_comparable_kinds(&min) {
        let (_, interleaved) = common::schedule_crosscheck(&min, kind);
        common::sharded_crosscheck(&min, kind, &interleaved, 2);
    }
}

/// The acceptance-criterion workflow end to end: a failure is
/// exportable, shrinkable, and re-replayable *from the `.mbt` file
/// alone* — parse the exported minimized trace back from disk and the
/// predicate still trips on what was read.
#[test]
fn minimized_trace_reproduces_from_disk_alone() {
    let min = shrink_workload(&noisy_workload(), &mut workload_diverges);
    let path = std::env::temp_dir().join("mbus_shrinker_selftest.min.mbt");
    std::fs::write(&path, TraceFile::workload(min).with_seed(0).to_mbt()).expect("write repro");

    let reread = TraceFile::parse_file(&path).unwrap_or_else(|e| panic!("{e}"));
    std::fs::remove_file(&path).ok();
    assert_eq!(reread.meta.seed, Some(0));
    let mbus_core::trace::Trace::Workload(w) = &reread.trace else {
        panic!("repro should be a single-bus trace");
    };
    assert!(
        workload_diverges(w),
        "re-parsed minimized trace no longer reproduces the failure"
    );
}
