//! Property-style tests over the MBus protocol invariants.
//!
//! Cases are generated with `mbus_sim::SmallRng` (no external
//! property-testing crate is available in the build image); each case
//! derives from a printed seed so failures reproduce exactly.

use mbus_core::message::bits_to_bytes;
use mbus_core::wire::WireBusBuilder;
use mbus_core::{
    enumeration, timing, Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec,
    ParallelMbus, ShortPrefix,
};
use mbus_sim::SmallRng;

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn random_short_addr(rng: &mut SmallRng) -> Address {
    let p = rng.gen_range(1..0xF) as u8;
    let f = rng.gen_range(0..0x10) as u8;
    Address::short(sp(p), FuId::new(f).unwrap())
}

fn random_addr(rng: &mut SmallRng) -> Address {
    match rng.gen_index(0..3) {
        0 => random_short_addr(rng),
        1 => Address::full(
            FullPrefix::new(rng.gen_range(0..1 << 20) as u32).unwrap(),
            FuId::new(rng.gen_range(0..0x10) as u8).unwrap(),
        ),
        _ => Address::broadcast(
            mbus_core::BroadcastChannel::new(rng.gen_range(0..0x10) as u8).unwrap(),
        ),
    }
}

/// Every address survives the wire encoding round trip.
#[test]
fn address_codec_round_trips() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let addr = random_addr(&mut rng);
        let bytes = addr.encode();
        let decoded = Address::decode(&bytes).unwrap();
        assert_eq!(addr, decoded, "seed {seed}");
        assert_eq!(bytes.len() as u32 * 8, addr.wire_bits(), "seed {seed}");
    }
}

/// Message bit streams are byte-aligned and reassemble exactly.
#[test]
fn message_bits_round_trip() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let addr = random_short_addr(&mut rng);
        let len = rng.gen_index(0..64);
        let payload = rng.gen_bytes(len);
        let msg = Message::new(addr, payload.clone());
        let bits = msg.to_bits();
        assert_eq!(bits.len() % 8, 0, "seed {seed}");
        let (bytes, dropped) = bits_to_bytes(&bits);
        assert_eq!(dropped, 0, "seed {seed}");
        assert_eq!(&bytes[1..], payload.as_slice(), "seed {seed}");
    }
}

/// §4.9: receivers discard up to 7 trailing bits; the whole bytes
/// always survive.
#[test]
fn byte_alignment_discards_only_the_tail() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let len = rng.gen_index(0..32);
        let payload = rng.gen_bytes(len);
        let extra = rng.gen_index(0..8);
        let mut bits: Vec<bool> = payload
            .iter()
            .flat_map(|&b| (0..8).map(move |i| b & (0x80 >> i) != 0))
            .collect();
        bits.extend(std::iter::repeat_n(true, extra));
        let (bytes, dropped) = bits_to_bytes(&bits);
        assert_eq!(bytes, payload, "seed {seed}");
        assert_eq!(dropped, extra, "seed {seed}");
    }
}

/// The analytic engine's cycle count always equals the §6.1 budget for
/// deliverable messages.
#[test]
fn analytic_cycles_match_budget() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(3000 + seed);
        let len = rng.gen_index(0..200);
        let payload = rng.gen_bytes(len);
        let full = rng.gen_bool();
        let mut bus = AnalyticBus::new(BusConfig::default());
        bus.add_node(NodeSpec::new("a", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)));
        bus.add_node(NodeSpec::new("b", FullPrefix::new(0x2).unwrap()).with_short_prefix(sp(0x2)));
        let dest = if full {
            Address::full(FullPrefix::new(0x2).unwrap(), FuId::ZERO)
        } else {
            Address::short(sp(0x2), FuId::ZERO)
        };
        let msg = Message::new(dest, payload);
        bus.queue(0, msg.clone()).unwrap();
        let record = bus.run_transaction().unwrap();
        assert_eq!(
            record.cycles,
            timing::transaction_cycles(&msg) as u64,
            "seed {seed}"
        );
    }
}

/// Arbitration winner is always the topologically-first contender (no
/// priority messages involved).
#[test]
fn arbitration_is_topological() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(4000 + seed);
        let n = rng.gen_index(5..9);
        let contenders: Vec<bool> = (0..n).map(|_| rng.gen_bool()).collect();
        if !contenders.iter().any(|&c| c) {
            continue;
        }
        let mut bus = AnalyticBus::new(BusConfig::default());
        for i in 0..n {
            bus.add_node(
                NodeSpec::new(format!("n{i}"), FullPrefix::new(0x400 + i as u32).unwrap())
                    .with_short_prefix(sp((i + 1) as u8)),
            );
        }
        let first = contenders.iter().position(|&c| c).unwrap();
        let dest = Address::short(sp(((first + 1) % n + 1) as u8), FuId::ZERO);
        for (i, &wants) in contenders.iter().enumerate() {
            if wants {
                bus.queue(i, Message::new(dest, vec![i as u8])).unwrap();
            }
        }
        let record = bus.run_transaction().unwrap();
        assert_eq!(record.winner, Some(first), "seed {seed}");
    }
}

/// Parallel-MBus striping is lossless for every lane count.
#[test]
fn parallel_stripe_round_trips() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(5000 + seed);
        let wires = rng.gen_range(1..9) as u32;
        let len = rng.gen_index(0..64);
        let payload = rng.gen_bytes(len);
        let p = ParallelMbus::new(wires).unwrap();
        let lanes = p.stripe(&payload);
        let bits = p.destripe(&lanes, payload.len() * 8);
        let (bytes, dropped) = bits_to_bytes(&bits);
        assert_eq!(dropped, 0, "seed {seed}");
        assert_eq!(bytes, payload, "seed {seed}");
    }
}

/// Enumeration always assigns unique prefixes in topological order, for
/// any population that fits.
#[test]
fn enumeration_is_unique_and_ordered() {
    for n in 1usize..=14 {
        let mut bus = AnalyticBus::new(BusConfig::default());
        for i in 0..n {
            bus.add_node(NodeSpec::new(
                format!("chip{i}"),
                FullPrefix::new(0x500 + i as u32).unwrap(),
            ));
        }
        let assignments = enumeration::enumerate(&mut bus, 0).unwrap();
        assert_eq!(assignments.len(), n);
        for (k, a) in assignments.iter().enumerate() {
            assert_eq!(a.node, k);
            assert_eq!(a.prefix.raw() as usize, k + 1);
        }
    }
}

/// MBus overhead is payload-independent; length-dependent protocols
/// always cross it eventually (Fig. 10's structure).
#[test]
fn overhead_crossover_exists() {
    for per_byte in 1u32..4 {
        let mbus = timing::SHORT_OVERHEAD_CYCLES;
        let crossover = (0..200).find(|&n| per_byte * n > mbus);
        assert!(crossover.is_some());
        let n = crossover.unwrap();
        assert!(per_byte * (n - 1) <= mbus);
    }
}

/// Any payload crosses the wire-level ring intact — the end-to-end
/// integrity property that subsumes glitch, latch-timing, and alignment
/// concerns. (Wire-level cases are slower; fewer but still meaningful.)
#[test]
fn wire_engine_delivers_arbitrary_payloads() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(6000 + seed);
        let len = rng.gen_index(0..48);
        let payload = rng.gen_bytes(len);
        let sender = rng.gen_index(0..3);
        let mut bus = WireBusBuilder::new(BusConfig::default())
            .node(NodeSpec::new("a", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
            .node(NodeSpec::new("b", FullPrefix::new(0x2).unwrap()).with_short_prefix(sp(0x2)))
            .node(NodeSpec::new("c", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
            .build();
        let dest_node = (sender + 1) % 3;
        let dest = Address::short(sp((dest_node + 1) as u8), FuId::ZERO);
        bus.queue(sender, Message::new(dest, payload.clone()))
            .unwrap();
        let records = bus.run_until_quiescent(50_000_000);
        assert!(!records.is_empty(), "seed {seed}");
        let rx = bus.take_rx(dest_node);
        assert_eq!(rx.len(), 1, "seed {seed}");
        assert_eq!(&rx[0].payload, &payload, "seed {seed}");
    }
}
