//! Property-based tests over the MBus protocol invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use mbus_core::message::bits_to_bytes;
use mbus_core::wire::WireBusBuilder;
use mbus_core::{
    enumeration, timing, Address, AnalyticBus, BusConfig, FuId, FullPrefix, Message, NodeSpec,
    ParallelMbus, ShortPrefix,
};

fn sp(x: u8) -> ShortPrefix {
    ShortPrefix::new(x).unwrap()
}

fn short_addr_strategy() -> impl Strategy<Value = Address> {
    (1u8..=0xE, 0u8..=0xF)
        .prop_map(|(p, f)| Address::short(sp(p), FuId::new(f).unwrap()))
}

fn any_addr_strategy() -> impl Strategy<Value = Address> {
    prop_oneof![
        short_addr_strategy(),
        (0u32..(1 << 20), 0u8..=0xF).prop_map(|(p, f)| Address::full(
            FullPrefix::new(p).unwrap(),
            FuId::new(f).unwrap()
        )),
        (0u8..=0xF).prop_map(|c| Address::broadcast(
            mbus_core::BroadcastChannel::new(c).unwrap()
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every address survives the wire encoding round trip.
    #[test]
    fn address_codec_round_trips(addr in any_addr_strategy()) {
        let bytes = addr.encode();
        let decoded = Address::decode(&bytes).unwrap();
        prop_assert_eq!(addr, decoded);
        prop_assert_eq!(bytes.len() as u32 * 8, addr.wire_bits());
    }

    /// Message bit streams are byte-aligned and reassemble exactly.
    #[test]
    fn message_bits_round_trip(
        addr in short_addr_strategy(),
        payload in vec(any::<u8>(), 0..64),
    ) {
        let msg = Message::new(addr, payload.clone());
        let bits = msg.to_bits();
        prop_assert_eq!(bits.len() % 8, 0);
        let (bytes, dropped) = bits_to_bytes(&bits);
        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(&bytes[1..], payload.as_slice());
    }

    /// §4.9: receivers discard up to 7 trailing bits; the whole bytes
    /// always survive.
    #[test]
    fn byte_alignment_discards_only_the_tail(
        payload in vec(any::<u8>(), 0..32),
        extra in 0usize..8,
    ) {
        let mut bits: Vec<bool> = payload
            .iter()
            .flat_map(|&b| (0..8).map(move |i| b & (0x80 >> i) != 0))
            .collect();
        bits.extend(std::iter::repeat_n(true, extra));
        let (bytes, dropped) = bits_to_bytes(&bits);
        prop_assert_eq!(bytes, payload);
        prop_assert_eq!(dropped, extra);
    }

    /// The analytic engine's cycle count always equals the §6.1
    /// budget for deliverable messages.
    #[test]
    fn analytic_cycles_match_budget(
        payload in vec(any::<u8>(), 0..200),
        full in any::<bool>(),
    ) {
        let mut bus = AnalyticBus::new(BusConfig::default());
        bus.add_node(
            NodeSpec::new("a", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)),
        );
        bus.add_node(
            NodeSpec::new("b", FullPrefix::new(0x2).unwrap()).with_short_prefix(sp(0x2)),
        );
        let dest = if full {
            Address::full(FullPrefix::new(0x2).unwrap(), FuId::ZERO)
        } else {
            Address::short(sp(0x2), FuId::ZERO)
        };
        let msg = Message::new(dest, payload);
        bus.queue(0, msg.clone()).unwrap();
        let record = bus.run_transaction().unwrap();
        prop_assert_eq!(record.cycles, timing::transaction_cycles(&msg) as u64);
    }

    /// Arbitration winner is always the topologically-first contender
    /// (no priority messages involved).
    #[test]
    fn arbitration_is_topological(
        contenders in vec(any::<bool>(), 5..9),
    ) {
        prop_assume!(contenders.iter().any(|&c| c));
        let n = contenders.len();
        let mut bus = AnalyticBus::new(BusConfig::default());
        for i in 0..n {
            bus.add_node(
                NodeSpec::new(
                    format!("n{i}"),
                    FullPrefix::new(0x400 + i as u32).unwrap(),
                )
                .with_short_prefix(sp((i + 1) as u8)),
            );
        }
        let first = contenders.iter().position(|&c| c).unwrap();
        let dest = Address::short(sp(((first + 1) % n + 1) as u8), FuId::ZERO);
        for (i, &wants) in contenders.iter().enumerate() {
            if wants {
                bus.queue(i, Message::new(dest, vec![i as u8])).unwrap();
            }
        }
        let record = bus.run_transaction().unwrap();
        prop_assert_eq!(record.winner, Some(first));
    }

    /// Parallel-MBus striping is lossless for every lane count.
    #[test]
    fn parallel_stripe_round_trips(
        wires in 1u32..=8,
        payload in vec(any::<u8>(), 0..64),
    ) {
        let p = ParallelMbus::new(wires).unwrap();
        let lanes = p.stripe(&payload);
        let bits = p.destripe(&lanes, payload.len() * 8);
        let (bytes, dropped) = bits_to_bytes(&bits);
        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(bytes, payload);
    }

    /// Enumeration always assigns unique prefixes in topological order,
    /// for any population that fits.
    #[test]
    fn enumeration_is_unique_and_ordered(n in 1usize..=14) {
        let mut bus = AnalyticBus::new(BusConfig::default());
        for i in 0..n {
            bus.add_node(NodeSpec::new(
                format!("chip{i}"),
                FullPrefix::new(0x500 + i as u32).unwrap(),
            ));
        }
        let assignments = enumeration::enumerate(&mut bus, 0).unwrap();
        prop_assert_eq!(assignments.len(), n);
        for (k, a) in assignments.iter().enumerate() {
            prop_assert_eq!(a.node, k);
            prop_assert_eq!(a.prefix.raw() as usize, k + 1);
        }
    }

    /// MBus overhead is payload-independent; length-dependent protocols
    /// always cross it eventually (Fig. 10's structure).
    #[test]
    fn overhead_crossover_exists(per_byte in 1u32..4) {
        let mbus = timing::SHORT_OVERHEAD_CYCLES;
        let crossover = (0..200).find(|&n| per_byte * n > mbus);
        prop_assert!(crossover.is_some());
        let n = crossover.unwrap();
        prop_assert!(per_byte * (n - 1) <= mbus);
    }
}

proptest! {
    // Wire-level cases are slower; fewer but still meaningful cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any payload crosses the wire-level ring intact — the end-to-end
    /// integrity property that subsumes glitch, latch-timing, and
    /// alignment concerns.
    #[test]
    fn wire_engine_delivers_arbitrary_payloads(
        payload in vec(any::<u8>(), 0..48),
        sender in 0usize..3,
    ) {
        let mut bus = WireBusBuilder::new(BusConfig::default())
            .node(NodeSpec::new("a", FullPrefix::new(0x1).unwrap()).with_short_prefix(sp(0x1)))
            .node(NodeSpec::new("b", FullPrefix::new(0x2).unwrap()).with_short_prefix(sp(0x2)))
            .node(NodeSpec::new("c", FullPrefix::new(0x3).unwrap()).with_short_prefix(sp(0x3)))
            .build();
        let dest_node = (sender + 1) % 3;
        let dest = Address::short(sp((dest_node + 1) as u8), FuId::ZERO);
        bus.queue(sender, Message::new(dest, payload.clone())).unwrap();
        let records = bus.run_until_quiescent(50_000_000);
        prop_assert!(!records.is_empty());
        let rx = bus.take_rx(dest_node);
        prop_assert_eq!(rx.len(), 1);
        prop_assert_eq!(&rx[0].payload, &payload);
    }
}
