//! Wavefront-vs-oracle equivalence for the wire engine.
//!
//! The wavefront fast path (see `mbus_sim::Scheduler`'s docs) claims to
//! be *bit-identical* to the edge-at-a-time heap path, not merely
//! behaviorally close: same `Trace` transition streams, same
//! `WireTransaction`-derived records, same `BusStats`, same
//! `ScenarioSignature` digests. This suite holds it to that claim over
//! the seeded battery and the golden corpus; any divergence is a bug in
//! the lane's `(time, seq)` merge, not an acceptable approximation.

mod common;

use mbus_core::engine::BusEngine;
use mbus_core::trace::{fleet_digest, scenario_digest, Trace, TraceFile};
use mbus_core::wire::WireEngine;
use mbus_core::{EngineKind, ScenarioReport, Workload};

/// Runs `w` on a wire engine with the chosen propagation path,
/// returning the report *and* the engine so the raw kernel trace stays
/// inspectable.
fn run_wire(w: &Workload, wavefront: bool) -> (ScenarioReport, WireEngine) {
    let mut engine = WireEngine::new(*w.config()).with_wavefront(wavefront);
    for spec in w.node_specs() {
        engine.add_node(spec.clone());
    }
    let report = w.apply(&mut engine);
    (report, engine)
}

/// The full bit-identity assertion: every observable of the two runs,
/// from kernel-level net transitions up to the signature digest.
fn assert_bit_identical(w: &Workload) {
    let (fast_report, fast) = run_wire(w, true);
    let (oracle_report, oracle) = run_wire(w, false);

    // Kernel level: the per-net transition streams (what the ½CV²
    // energy model charges) must match edge for edge, timestamp for
    // timestamp.
    let (fast_bus, oracle_bus) = (
        fast.wire_bus().expect("ran"),
        oracle.wire_bus().expect("ran"),
    );
    let (ft, ot) = (fast_bus.trace(), oracle_bus.trace());
    assert_eq!(ft.total_edges(), ot.total_edges(), "{}", w.name());
    for net in ot.nets() {
        assert_eq!(
            ft.transitions(net),
            ot.transitions(net),
            "{}: net {} diverged",
            w.name(),
            ot.net_name(net)
        );
    }

    // Engine level: records, receive logs, wake accounting, stats
    // (including the new per-segment edge counters).
    assert_eq!(fast_report.records, oracle_report.records, "{}", w.name());
    assert_eq!(fast_report.rx, oracle_report.rx, "{}", w.name());
    assert_eq!(
        fast_report.wake_events,
        oracle_report.wake_events,
        "{}",
        w.name()
    );
    assert_eq!(fast_report.stats, oracle_report.stats, "{}", w.name());

    // Signature level: the digest the corpus pins.
    let (fast_sig, oracle_sig) = (fast_report.signature(), oracle_report.signature());
    assert_eq!(fast_sig, oracle_sig, "{}", w.name());
    assert_eq!(
        scenario_digest(&fast_sig),
        scenario_digest(&oracle_sig),
        "{}",
        w.name()
    );
}

/// The 200-seed battery (`MBUS_SEED_SCALE` multiplies it in the weekly
/// cron): every wire-comparable seeded workload must be bit-identical
/// across the two propagation paths.
#[test]
fn seeded_battery_is_bit_identical_across_paths() {
    let seeds = common::scaled_seeds(200);
    let mut ran = 0u64;
    for seed in 0..seeds {
        let w = Workload::seeded(seed);
        if !w.wire_comparable() {
            continue;
        }
        assert_bit_identical(&w);
        ran += 1;
    }
    // Census guard against the generator collapsing to all-partial
    // drains. ~45% of seeds are wire-comparable since the reactive
    // behavior draws joined the stream; 40% keeps headroom while still
    // catching a real collapse.
    assert!(
        ran * 5 >= seeds * 2,
        "battery mostly skipped ({ran}/{seeds}); seeded generator drifted?"
    );
}

/// The paper's named scenarios and the hostile mixes exercise shapes
/// the uniform seeded generator rarely hits (priority storms, runaway
/// cuts, rx-buffer aborts, broadcast channels).
#[test]
fn named_scenarios_are_bit_identical_across_paths() {
    for w in [
        Workload::sense_and_send(3),
        Workload::monitor_alert(4, 16),
        Workload::many_node_storm(6, 3),
        Workload::many_node_storm(14, 2),
        Workload::fault_injection(),
    ] {
        if w.wire_comparable() {
            assert_bit_identical(&w);
        }
    }
}

/// Every committed `.mbt` corpus trace, replayed against both paths.
/// Single-bus traces get the direct oracle comparison; fleet traces
/// (whose engines are built internally) are held to their pinned
/// digests, which were recorded before the wavefront path existed —
/// matching them *is* the oracle comparison.
#[test]
fn golden_corpus_is_bit_identical_across_paths() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "mbt"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 7, "corpus shrank: {entries:?}");
    for path in entries {
        let file = path.file_name().unwrap().to_string_lossy().into_owned();
        let tf = TraceFile::parse_file(&path).unwrap_or_else(|e| panic!("{e}"));
        let pinned = tf
            .meta
            .expect_sig
            .unwrap_or_else(|| panic!("{file}: corpus traces must pin `expect sig=`"));
        match &tf.trace {
            Trace::Workload(w) => {
                if w.wire_comparable() {
                    assert_bit_identical(w);
                    let digest = scenario_digest(&run_wire(w, true).0.signature());
                    assert_eq!(digest, pinned, "{file}: wavefront drifted from pin");
                }
            }
            Trace::Fleet(w) => {
                if w.wire_comparable() {
                    let digest = fleet_digest(&w.run_on(EngineKind::Wire).signature());
                    assert_eq!(digest, pinned, "{file}: wavefront drifted from pin");
                }
            }
        }
    }
}
