//! Interleaved-vs-batched fleet equivalence: the
//! [`InterleavedScheduler`] (one transaction per cluster per round,
//! the serving schedule for thousands of buses on one thread) must
//! produce the *same per-cluster behavior* as the batched
//! cluster-major drain from PR 3.
//!
//! The contract, exactly as `mbus_core::fleet` documents it: both
//! schedules route gateway envelopes only at epoch barriers, so each
//! cluster performs the same autonomous drain either way —
//! per-cluster record streams, receive logs, wake accounting, and
//! gateway counters are identical, which makes [`FleetSignature`]
//! equality the single-line assertion. **How the fleet-wide
//! [`FleetRecord`] order may differ** is also pinned here: the batched
//! drain emits each epoch cluster-major (all of cluster 0's
//! transactions, then cluster 1's, …), the interleaved scheduler emits
//! the same transactions round-robin (every active cluster's first
//! transaction in cluster order, then every one's second, …). The
//! per-cluster subsequences of the two streams are equal; only the
//! merge order differs.
//!
//! [`FleetRecord`]: mbus_core::FleetRecord
//! [`FleetSignature`]: mbus_core::FleetSignature
//! [`InterleavedScheduler`]: mbus_core::InterleavedScheduler

mod common;

use mbus_core::fleet::{Fleet, FleetNodeId, InterleavedScheduler};
use mbus_core::{
    BusConfig, EngineKind, EngineRecord, FleetReport, FleetSchedule, FleetWorkload, FuId,
};

/// The records a report emitted on one cluster, in emission order.
fn per_cluster(report: &FleetReport, cluster: usize) -> Vec<EngineRecord> {
    report
        .records
        .iter()
        .filter(|r| r.cluster == cluster)
        .map(|r| r.record.clone())
        .collect()
}

#[test]
fn seeded_fleets_interleave_equivalently_over_200_seeds() {
    // The satellite battery: on every seeded fleet workload the two
    // schedules must agree on per-cluster FleetSignatures (records,
    // deliveries, wakes, gateway counters) — and the full per-cluster
    // record subsequences of the raw streams must match too.
    for seed in 0..common::scaled_seeds(200) {
        let w = FleetWorkload::seeded(seed);
        let (batched, interleaved) = common::schedule_crosscheck(&w, EngineKind::Event);
        let clusters = w.cluster_specs().len();
        for c in 0..clusters {
            assert_eq!(
                per_cluster(&batched, c),
                per_cluster(&interleaved, c),
                "{} cluster {c}: per-cluster stream reordered",
                w.name()
            );
        }
        // Same multiset fleet-wide: the streams are permutations.
        assert_eq!(
            batched.records.len(),
            interleaved.records.len(),
            "{}",
            w.name()
        );
    }
}

#[test]
fn interleaved_schedule_is_engine_independent() {
    // The interleaved record stream (cluster-tagged, in round-robin
    // emission order) must be identical on every engine kind, exactly
    // like the batched stream already is.
    let w = FleetWorkload::cross_storm(3, 3, 2);
    let reports: Vec<FleetReport> = EngineKind::ALL
        .iter()
        .map(|&kind| w.run_scheduled_on(kind, FleetSchedule::Interleaved))
        .collect();
    for report in &reports[1..] {
        assert_eq!(reports[0].records, report.records, "{}", report.kind);
        assert_eq!(
            reports[0].signature(),
            report.signature(),
            "{}",
            report.kind
        );
    }
}

#[test]
fn round_robin_emission_order_differs_cluster_major() {
    // Documents the exact reordering: two clusters, two local messages
    // each. The batched drain finishes cluster 0 before touching
    // cluster 1; the interleaved scheduler alternates.
    let mut w = FleetWorkload::new("order", BusConfig::default())
        .cluster(vec![false, false])
        .cluster(vec![false, false]);
    for c in 0..2 {
        for k in 0..2u8 {
            w = w.send_local(
                FleetNodeId::new(c, 1),
                mbus_core::Message::new(
                    mbus_core::Address::short(
                        mbus_core::ShortPrefix::new(0x3).unwrap(),
                        FuId::ZERO,
                    ),
                    vec![c as u8, k],
                ),
            );
        }
    }
    let (batched, interleaved) = common::schedule_crosscheck(&w, EngineKind::Event);
    let order = |r: &FleetReport| r.records.iter().map(|fr| fr.cluster).collect::<Vec<_>>();
    assert_eq!(order(&batched), vec![0, 0, 1, 1], "cluster-major");
    assert_eq!(order(&interleaved), vec![0, 1, 0, 1], "round-robin");
}

#[test]
fn interleaved_scheduler_handles_cross_cluster_causality() {
    // Store-and-forward through the gateway under the interleaved
    // schedule: the envelope leg runs in one epoch, the barrier routes
    // it, the forwarded leg runs on the destination bus next epoch —
    // and a power-gated destination is woken exactly as the batched
    // drain (and the single-bus engines) guarantee.
    for kind in EngineKind::ALL {
        let mut fleet = Fleet::new(kind, BusConfig::default());
        let a = fleet.add_cluster();
        let b = fleet.add_cluster();
        let src = fleet.add_sensor(a, false);
        let dst = fleet.add_sensor(b, true);
        fleet
            .queue_remote(src, dst, FuId::ZERO, vec![0x42])
            .unwrap();
        let records = fleet.run_until_quiescent_interleaved();
        assert_eq!(records.len(), 2, "{kind}: envelope + forwarded leg");
        assert_eq!(
            (records[0].cluster, records[1].cluster),
            (0, 1),
            "{kind}: store-and-forward ordering"
        );
        assert_eq!(fleet.gateway().forwarded(), 1, "{kind}");
        let rx = fleet.take_rx(dst);
        assert_eq!(rx.len(), 1, "{kind}: delivered while gated");
        assert_eq!(rx[0].payload, vec![0x42], "{kind}");
        assert!(!fleet.layer_on(dst), "{kind}: re-gated after delivery");
        let stats = fleet.stats(1);
        assert_eq!(stats.bus_ctl_wakes, vec![0, 1], "{kind}: one wake charged");
        assert_eq!(stats.layer_wakes, vec![0, 1], "{kind}");
    }
}

#[test]
fn scheduler_counters_and_reuse_across_drives() {
    // One scheduler instance drives two fleets; counters accumulate
    // and the active-list scratch is reused safely.
    let mut scheduler = InterleavedScheduler::new();
    for _ in 0..2 {
        let mut fleet = Fleet::new(EngineKind::Event, BusConfig::default());
        let a = fleet.add_cluster();
        let b = fleet.add_cluster();
        let s0 = fleet.add_sensor(a, false);
        fleet.add_sensor(b, false);
        fleet
            .queue_remote(s0, FleetNodeId::new(1, 1), FuId::ZERO, vec![1, 2])
            .unwrap();
        let mut n = 0;
        scheduler.drive(&mut fleet, &mut |_| n += 1);
        assert_eq!(n, 2);
    }
    assert_eq!(scheduler.transactions(), 4);
    // Two progress epochs per drive (envelope, then forwarded leg);
    // the terminating empty epochs are not counted — see the
    // `InterleavedScheduler::epochs` contract.
    assert_eq!(scheduler.epochs(), 4);
    // A drive over an already-quiescent fleet adds nothing: the
    // counter no longer inflates on back-to-back drives.
    let mut quiet = Fleet::new(EngineKind::Event, BusConfig::default());
    quiet.add_cluster();
    scheduler.drive(&mut quiet, &mut |_| {});
    scheduler.drive(&mut quiet, &mut |_| {});
    assert_eq!(scheduler.epochs(), 4);
}

#[test]
fn big_interleaved_fleet_matches_batched() {
    // A 100+-node fleet through both schedules on the event engine —
    // the shape the interleave bench runs at 4096 nodes.
    let w = FleetWorkload::sense_and_aggregate(16, 6, 2);
    assert!(w.total_nodes() > 100);
    let (batched, interleaved) = common::schedule_crosscheck(&w, EngineKind::Event);
    assert_eq!(batched.forwarded, interleaved.forwarded);
    assert_eq!(batched.transactions(), interleaved.transactions());
}
