//! Shared helpers for the integration suites: run a workload on
//! *every* [`EngineKind`] from one place, so adding an engine extends
//! the whole conformance surface without touching each test, and scale
//! the seeded-fuzz batteries through one environment knob.
//!
//! Each `tests/*.rs` integration crate pulls this in with `mod common;`
//! and uses the slice it needs (hence the crate-level `dead_code`
//! allow — not every suite calls every helper).

#![allow(dead_code)]

use mbus_core::{
    EngineKind, FleetReport, FleetSchedule, FleetWorkload, ScenarioReport, ShardBalance,
    ShardedFleet, Workload,
};

/// Multiplier for seeded-fuzz batteries, read from `MBUS_SEED_SCALE`
/// (defaults to 1). The weekly CI cron sets it to 10 so the same
/// suites sweep ten times the seed space without a separate test
/// binary.
pub fn seed_scale() -> u64 {
    std::env::var("MBUS_SEED_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&scale| scale >= 1)
        .unwrap_or(1)
}

/// `base * seed_scale()`: the number of seeds a battery should walk.
///
/// Under Miri the product is cut to a handful of seeds: the
/// interpreter is ~100× slower than native and the CI Miri job is
/// after undefined behavior in the unsafe concurrency layer, not seed
/// coverage — the native weekly cron owns breadth.
pub fn scaled_seeds(base: u64) -> u64 {
    let scaled = base * seed_scale();
    if cfg!(miri) {
        scaled.min(3)
    } else {
        scaled
    }
}

/// The engine kinds `workload` can be compared on: all of them, unless
/// the workload contains partial drains — the wire engine may legally
/// run ahead of `run_transaction` (see the `BusEngine` contract), so
/// mid-drain queueing is pinned analytic ≡ event only.
pub fn comparable_kinds(workload: &Workload) -> Vec<EngineKind> {
    EngineKind::ALL
        .iter()
        .copied()
        .filter(|&kind| workload.wire_comparable() || kind != EngineKind::Wire)
        .collect()
}

/// Runs `workload` on every comparable engine kind and asserts all
/// [`ScenarioSignature`]s are identical, returning the reports in
/// [`EngineKind::ALL`] order (wire omitted for non-wire-comparable
/// workloads) for scenario-specific follow-up assertions.
///
/// [`ScenarioSignature`]: mbus_core::scenario::ScenarioSignature
pub fn crosscheck_all_engines(workload: &Workload) -> Vec<ScenarioReport> {
    let reports: Vec<ScenarioReport> = comparable_kinds(workload)
        .into_iter()
        .map(|kind| workload.run_on(kind))
        .collect();
    let reference = reports[0].signature();
    for report in &reports[1..] {
        assert_eq!(
            reference,
            report.signature(),
            "engines {} and {} disagree on workload '{}'",
            reports[0].kind,
            report.kind,
            workload.name()
        );
    }
    reports
}

/// The engine kinds `workload` can be compared on: all of them, unless
/// the workload contains partial drains ([`mbus_core::fleet::FleetStep::RunRounds`])
/// — the wire engine may legally run ahead of `run_transaction`, so
/// such fleets are pinned analytic ≡ event only, exactly like the
/// single-bus layer.
pub fn fleet_comparable_kinds(workload: &FleetWorkload) -> Vec<EngineKind> {
    EngineKind::ALL
        .iter()
        .copied()
        .filter(|&kind| workload.wire_comparable() || kind != EngineKind::Wire)
        .collect()
}

/// Runs `workload` on every comparable engine kind and asserts all
/// [`mbus_core::FleetSignature`]s are identical, returning the reports
/// in [`EngineKind::ALL`] order (wire omitted for workloads with
/// partial drains).
pub fn fleet_crosscheck_all_engines(workload: &FleetWorkload) -> Vec<FleetReport> {
    let reports: Vec<FleetReport> = fleet_comparable_kinds(workload)
        .into_iter()
        .map(|kind| workload.run_on(kind))
        .collect();
    let reference = reports[0].signature();
    for report in &reports[1..] {
        assert_eq!(
            reference,
            report.signature(),
            "engine kinds {} and {} disagree on fleet workload '{}'",
            reports[0].kind,
            report.kind,
            workload.name()
        );
    }
    reports
}

/// Runs `workload` under both [`FleetSchedule`]s on `kind` and asserts
/// the schedule-independence contract: identical signatures (identical
/// per-cluster record streams, receive logs, wake accounting, gateway
/// counters), returning `(batched, interleaved)` for order-specific
/// follow-up assertions.
pub fn schedule_crosscheck(
    workload: &FleetWorkload,
    kind: EngineKind,
) -> (FleetReport, FleetReport) {
    let batched = workload.run_scheduled_on(kind, FleetSchedule::Batched);
    let interleaved = workload.run_scheduled_on(kind, FleetSchedule::Interleaved);
    assert_eq!(
        batched.signature(),
        interleaved.signature(),
        "schedules disagree on fleet workload '{}' ({kind})",
        workload.name()
    );
    (batched, interleaved)
}

/// Runs `workload` sharded across `shards` workers on `kind` — once
/// through [`FleetSchedule::Sharded`] (the persistent pool rebalancing
/// every epoch) and once with rebalancing off
/// ([`ShardBalance::Static`]) — and asserts both sharded drains are
/// bit-identical to the single-threaded interleaved reference: the
/// full fleet-wide record stream (not just per-cluster subsequences),
/// the [`mbus_core::FleetSignature`], and the merged gateway counters.
/// Returns the rebalancing run's report.
pub fn sharded_crosscheck(
    workload: &FleetWorkload,
    kind: EngineKind,
    reference: &FleetReport,
    shards: usize,
) -> FleetReport {
    let sharded = workload.run_scheduled_on(kind, FleetSchedule::Sharded { shards });
    assert_sharded_matches(workload, kind, reference, &sharded, shards, "measured");
    let mut fixed = ShardedFleet::with_balance(shards, ShardBalance::Static);
    let unbalanced = workload.run_sharded_on(kind, &mut fixed);
    assert_sharded_matches(workload, kind, reference, &unbalanced, shards, "static");
    sharded
}

/// The sharded-vs-interleaved bit-identity assertions shared by both
/// balance modes of [`sharded_crosscheck`].
fn assert_sharded_matches(
    workload: &FleetWorkload,
    kind: EngineKind,
    reference: &FleetReport,
    sharded: &FleetReport,
    shards: usize,
    mode: &str,
) {
    assert_eq!(
        reference.records,
        sharded.records,
        "sharded({shards}, {mode}) record stream diverged on '{}' ({kind})",
        workload.name()
    );
    assert_eq!(
        reference.signature(),
        sharded.signature(),
        "sharded({shards}, {mode}) signature diverged on '{}' ({kind})",
        workload.name()
    );
    assert_eq!(
        (
            reference.forwarded,
            reference.hop_forwards,
            reference.dropped,
            &reference.cluster_drops,
            &reference.ttl_drops,
        ),
        (
            sharded.forwarded,
            sharded.hop_forwards,
            sharded.dropped,
            &sharded.cluster_drops,
            &sharded.ttl_drops,
        ),
        "sharded({shards}, {mode}) gateway counters diverged on '{}' ({kind})",
        workload.name()
    );
}
