//! Differential suite for the analytic engine's transaction kernel.
//!
//! The kernel maintains its contender/priority/power bookkeeping
//! incrementally and offers a batched queue drain
//! ([`AnalyticBus::run_until_quiescent_with`]) next to the
//! single-stepping [`AnalyticBus::run_transaction`]. These tests pin
//! the two paths to *bit-identical* behavior — full
//! [`TransactionRecord`] streams, statistics, and receive logs — over
//! hundreds of seeded random workloads ([`Workload::seeded`]), across
//! both arbitration policies and power-aware/always-on node mixes, and
//! cross-check a battery of the same seeds against the wire-level
//! engine.

use mbus_core::{
    AnalyticBus, ArbitrationPolicy, BusStats, EngineKind, ReceivedMessage, Step, TransactionRecord,
    Workload,
};

/// Replays a workload's steps on a fresh `AnalyticBus`, draining either
/// by single-stepping `run_transaction` or through the batched kernel.
fn replay(
    workload: &Workload,
    policy: ArbitrationPolicy,
    batched: bool,
) -> (Vec<TransactionRecord>, BusStats, Vec<Vec<ReceivedMessage>>) {
    let mut bus = AnalyticBus::new(*workload.config()).with_arbitration_policy(policy);
    for spec in workload.node_specs() {
        bus.add_node(spec.clone());
    }
    let mut records = Vec::new();
    fn drain(bus: &mut AnalyticBus, records: &mut Vec<TransactionRecord>, batched: bool) {
        if batched {
            bus.run_until_quiescent_with(|r| records.push(r.clone()));
        } else {
            while let Some(r) = bus.run_transaction() {
                records.push(r);
            }
        }
    }
    for step in workload.steps() {
        match step {
            Step::Queue { node, msg } => bus.queue(*node, msg.clone()).expect("queue step"),
            Step::QueueUnchecked { node, msg } => bus
                .queue_unchecked(*node, msg.clone())
                .expect("queue_unchecked step"),
            Step::Wakeup { node } => bus.request_wakeup(*node).expect("wakeup step"),
            Step::Run => drain(&mut bus, &mut records, batched),
        }
    }
    drain(&mut bus, &mut records, batched);
    let rx = (0..bus.node_count()).map(|i| bus.take_rx(i)).collect();
    (records, bus.stats().clone(), rx)
}

#[test]
fn batched_drain_is_bit_identical_to_single_stepping_over_200_seeds() {
    for policy in [
        ArbitrationPolicy::FixedTopological,
        ArbitrationPolicy::Rotating,
    ] {
        for seed in 0..200u64 {
            let workload = Workload::seeded(seed);
            let (stepped, stepped_stats, stepped_rx) = replay(&workload, policy, false);
            let (batched, batched_stats, batched_rx) = replay(&workload, policy, true);
            assert_eq!(
                stepped,
                batched,
                "record streams diverged: {} under {policy:?}",
                workload.name()
            );
            assert_eq!(stepped_stats, batched_stats, "{} stats", workload.name());
            assert_eq!(stepped_rx, batched_rx, "{} rx logs", workload.name());
        }
    }
}

#[test]
fn batched_drain_matches_on_the_paper_suite() {
    // The hand-written paper scenarios (power-gated senders, interrupt
    // wakeups, overruns, runaways, enumeration broadcasts) through both
    // kernel paths.
    for workload in Workload::paper_suite() {
        for policy in [
            ArbitrationPolicy::FixedTopological,
            ArbitrationPolicy::Rotating,
        ] {
            let (stepped, stepped_stats, stepped_rx) = replay(&workload, policy, false);
            let (batched, batched_stats, batched_rx) = replay(&workload, policy, true);
            assert_eq!(stepped, batched, "{} under {policy:?}", workload.name());
            assert_eq!(stepped_stats, batched_stats);
            assert_eq!(stepped_rx, batched_rx);
        }
    }
}

#[test]
fn seeded_workloads_agree_across_engines() {
    // The same seeded generator, cross-checked against the wire-level
    // engine — this is what pins the §4.3/§4.4 contender-field
    // semantics (a gated node cannot win, or assert priority in, the
    // transaction that wakes it) to the edge-accurate execution.
    for seed in 0..32u64 {
        let workload = Workload::seeded(seed);
        let analytic = workload.run_on(EngineKind::Analytic).signature();
        let wire = workload.run_on(EngineKind::Wire).signature();
        assert_eq!(analytic, wire, "engines disagree on {}", workload.name());
    }
}

#[test]
fn seeded_workloads_are_deterministic_per_seed() {
    for seed in [0u64, 7, 99] {
        let a = Workload::seeded(seed)
            .run_on(EngineKind::Analytic)
            .signature();
        let b = Workload::seeded(seed)
            .run_on(EngineKind::Analytic)
            .signature();
        assert_eq!(a, b);
    }
}
