//! Differential suite for the analytic engine's transaction kernel.
//!
//! The kernel maintains its contender/priority/power bookkeeping
//! incrementally and offers a batched queue drain
//! ([`AnalyticBus::run_until_quiescent_with`]) next to the
//! single-stepping [`AnalyticBus::run_transaction`]. These tests pin
//! the two paths to *bit-identical* behavior — full
//! [`TransactionRecord`] streams, statistics, and receive logs — over
//! hundreds of seeded random workloads ([`Workload::seeded`]), across
//! both arbitration policies and power-aware/always-on node mixes, and
//! cross-check the same seeds across every `EngineKind`.
//!
//! The seeded generator draws the ROADMAP's hostile-traffic cases too:
//! oversized/runaway messages past the mediator's limit, back-to-back
//! deliveries overrunning small receive buffers, and mid-drain
//! queueing (partial drains followed by more traffic). Mid-drain seeds
//! are pinned analytic ≡ event (the wire engine may legally run ahead
//! of `run_transaction` — see `Workload::wire_comparable`); everything
//! else is cross-checked three ways, wire included.
//!
//! Set `MBUS_SEED_SCALE` (the weekly CI cron uses 10) to sweep a
//! larger seed space with the same tests.

mod common;

use mbus_core::{
    AnalyticBus, ArbitrationPolicy, BusStats, EngineKind, ReceivedMessage, Step, TransactionRecord,
    Workload,
};

/// Replays a workload's steps on a fresh `AnalyticBus`, draining either
/// by single-stepping `run_transaction` or through the batched kernel.
/// Partial drains ([`Step::RunTransactions`]) have no batched form and
/// single-step in both modes — what they add to this suite is batched
/// drains *entered mid-queue*, after earlier traffic was partially
/// served and fresh traffic queued on top.
fn replay(
    workload: &Workload,
    policy: ArbitrationPolicy,
    batched: bool,
) -> (Vec<TransactionRecord>, BusStats, Vec<Vec<ReceivedMessage>>) {
    let mut bus = AnalyticBus::new(*workload.config()).with_arbitration_policy(policy);
    for spec in workload.node_specs() {
        bus.add_node(spec.clone());
    }
    let mut records = Vec::new();
    fn drain(bus: &mut AnalyticBus, records: &mut Vec<TransactionRecord>, batched: bool) {
        if batched {
            bus.run_until_quiescent_with(|r| records.push(r.clone()));
        } else {
            while let Some(r) = bus.run_transaction() {
                records.push(r);
            }
        }
    }
    for step in workload.steps() {
        match step {
            Step::Queue { node, msg } => bus.queue(*node, msg.clone()).expect("queue step"),
            Step::QueueUnchecked { node, msg } => bus
                .queue_unchecked(*node, msg.clone())
                .expect("queue_unchecked step"),
            Step::Wakeup { node } => bus.request_wakeup(*node).expect("wakeup step"),
            Step::Run => drain(&mut bus, &mut records, batched),
            Step::RunTransactions { count } => {
                for _ in 0..*count {
                    match bus.run_transaction() {
                        Some(r) => records.push(r),
                        None => break,
                    }
                }
            }
        }
    }
    drain(&mut bus, &mut records, batched);
    let rx = (0..bus.node_count()).map(|i| bus.take_rx(i)).collect();
    (records, bus.stats().clone(), rx)
}

#[test]
fn batched_drain_is_bit_identical_to_single_stepping_over_200_seeds() {
    for policy in [
        ArbitrationPolicy::FixedTopological,
        ArbitrationPolicy::Rotating,
    ] {
        for seed in 0..common::scaled_seeds(200) {
            let workload = Workload::seeded(seed);
            let (stepped, stepped_stats, stepped_rx) = replay(&workload, policy, false);
            let (batched, batched_stats, batched_rx) = replay(&workload, policy, true);
            assert_eq!(
                stepped,
                batched,
                "record streams diverged: {} under {policy:?}",
                workload.name()
            );
            assert_eq!(stepped_stats, batched_stats, "{} stats", workload.name());
            assert_eq!(stepped_rx, batched_rx, "{} rx logs", workload.name());
        }
    }
}

#[test]
fn batched_drain_matches_on_the_paper_suite() {
    // The hand-written paper scenarios (power-gated senders, interrupt
    // wakeups, overruns, runaways, enumeration broadcasts) through both
    // kernel paths.
    for workload in Workload::paper_suite() {
        for policy in [
            ArbitrationPolicy::FixedTopological,
            ArbitrationPolicy::Rotating,
        ] {
            let (stepped, stepped_stats, stepped_rx) = replay(&workload, policy, false);
            let (batched, batched_stats, batched_rx) = replay(&workload, policy, true);
            assert_eq!(stepped, batched, "{} under {policy:?}", workload.name());
            assert_eq!(stepped_stats, batched_stats);
            assert_eq!(stepped_rx, batched_rx);
        }
    }
}

#[test]
fn seeded_workloads_agree_across_all_engines_over_200_wire_seeds() {
    // The seeded generator — hostile traffic included — cross-checked
    // on every engine kind through the shared helper: analytic ≡ event
    // on every seed, and ≡ wire on every wire-comparable seed. The
    // walk continues until at least 200 seeds have been pinned against
    // the edge-accurate engine (mid-drain seeds can't be — the wire
    // engine legally runs ahead — so they only count toward the
    // kernel-pair total).
    let target = common::scaled_seeds(200);
    let mut wire_checked = 0u64;
    let mut seed = 0u64;
    while wire_checked < target {
        assert!(
            seed < 20 * target,
            "generator produced too few wire-comparable seeds \
             ({wire_checked}/{target} after {seed})"
        );
        let workload = Workload::seeded(seed);
        let reports = common::crosscheck_all_engines(&workload);
        if workload.wire_comparable() {
            assert_eq!(reports.len(), EngineKind::ALL.len());
            wire_checked += 1;
        }
        seed += 1;
    }
}

#[test]
fn seeded_hostile_traffic_arms_are_reachable() {
    // The generator must actually draw each hostile case in the first
    // seed block the batteries walk, or the suites above prove nothing.
    let mut oversized = 0u64;
    let mut overrun_capable = 0u64;
    let mut mid_drain = 0u64;
    for seed in 0..200u64 {
        let workload = Workload::seeded(seed);
        let max = workload.config().max_message_bytes();
        if workload
            .steps()
            .iter()
            .any(|s| matches!(s, Step::QueueUnchecked { msg, .. } if msg.len() > max))
        {
            oversized += 1;
        }
        if workload
            .node_specs()
            .iter()
            .any(|spec| spec.rx_buffer_bytes().is_some())
        {
            overrun_capable += 1;
        }
        if !workload.wire_comparable() {
            mid_drain += 1;
        }
    }
    assert!(oversized >= 20, "{oversized} seeds drew runaway messages");
    assert!(
        overrun_capable >= 50,
        "{overrun_capable} seeds carry rx-buffered nodes"
    );
    assert!(mid_drain >= 20, "{mid_drain} seeds drew partial drains");
}

#[test]
fn seeded_workloads_are_deterministic_per_seed() {
    for seed in [0u64, 7, 99] {
        let a = Workload::seeded(seed)
            .run_on(EngineKind::Analytic)
            .signature();
        let b = Workload::seeded(seed)
            .run_on(EngineKind::Analytic)
            .signature();
        assert_eq!(a, b);
    }
}
